//! The shared ||Lloyd's iteration driver.
//!
//! All three knor engines — knori (in-memory), knors (semi-external-memory)
//! and knord (distributed) — run the *same* iteration protocol; only the
//! row-access path differs (NUMA arenas, the SAFS row-cache stack, or a
//! per-rank slice of the matrix). clusterNOR's observation is that the
//! protocol itself is the reusable asset, so it lives here once and each
//! engine plugs in a [`LloydBackend`]:
//!
//! ```text
//! pre_iteration (coordinator)
//!   A ─ compute super-phase (backend) ─ B ─ parallel merge ─ C ─
//!       [reduce (backend: knord's allreduce window)]
//!       coordinator window: finalize means, drift, MTI update,
//!       convergence, stats, end_iteration (backend), queue refill ─ A
//! ```
//!
//! * **compute** — each worker drains the task queue and fills its private
//!   [`LocalAccum`]; the backend decides how a row's bytes are obtained.
//!   The helpers [`filter_row`], [`process_row_mti`], [`filter_row_yy`],
//!   [`process_row_yy`] and [`process_row_full`] implement the per-row
//!   pruning/full-scan state machine so backends share that logic too.
//! * **merge** — the `k·d` accumulator dimensions are sliced across
//!   workers; each worker sums one slice across all `T` accumulators.
//! * **reduce** — a hook between the local merge and the centroid update.
//!   Single-machine engines leave it as the identity; knord allreduces the
//!   merged sums/counts (and the convergence scalars) across ranks here, so
//!   every rank finalizes identical centroids — the paper's decentralized
//!   §3.3 design.
//! * **coordinator window** — worker 0 finalizes means, drifts and the MTI
//!   distance matrix, records statistics, decides convergence and refills
//!   the queue.
//!
//! Under MTI the accumulators hold *deltas* against persistent global sums
//! (maintained by the driver), so a Clause-1 skip touches no row data.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use knor_matrix::shared::SharedRows;
use knor_numa::{AccessTally, NodeId, Placement};
use knor_sched::TaskQueue;

use crate::algo::{LloydAlgo, MmAlgorithm, UpdateCtx};
use crate::centroids::{finalize_means, Centroids, LocalAccum};
use crate::distance::{dist, nearest, MIRROR_MAX_K};
use crate::kernel::{
    assign_rows, centroid_sqnorms, sqnorm, KernelKind, KernelScratch, ResolvedKernel, ResolvedKind,
};
use crate::pruning::{mti_assign, MtiIterState, PruneCounters, Pruning, YinyangState};
use crate::replica::{NodeReplicas, OpLog, ReplicaState};
use crate::stats::IterStats;
use crate::sync::ExclusiveCell;
use crate::trace::{Phase, PhaseBreakdown, TraceHandle, WorkerTracer};

/// Backend-independent parameters of a driver run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of clusters.
    pub k: usize,
    /// Dimensionality.
    pub d: usize,
    /// Rows this engine instance owns (a rank's slice for knord).
    pub n: usize,
    /// Worker threads.
    pub nthreads: usize,
    /// Iteration cap (counting the initial assignment pass).
    pub max_iters: usize,
    /// Drift tolerance (0.0 = reassignment-only convergence).
    pub tol: f64,
    /// Pruning scheme (`None | Mti | Yinyang`).
    pub pruning: Pruning,
    /// Rows per scheduler task.
    pub task_size: usize,
    /// Assignment kernel for full scans (see [`crate::kernel`]).
    pub kernel: KernelKind,
    /// Autotuned `(row_tile, cent_tile)` override (see [`crate::tune`]);
    /// `None` keeps the resolve-time heuristic tiles.
    pub tiles: Option<(usize, usize)>,
    /// Global row id of local row 0 (knord passes its rank's slice start;
    /// single-machine engines pass 0). Algorithms that key on global row
    /// identity — mini-batch subsampling — see `row_offset + r`.
    pub row_offset: usize,
    /// Maintain per-NUMA-node read replicas of the iteration state (see
    /// [`crate::replica`]). Engines resolve their
    /// [`Replication`](crate::replica::Replication) knob against the
    /// topology and hand the driver the decided flag.
    pub replication: bool,
    /// Span recorder for this run (see [`crate::trace`]); `None` keeps
    /// the hot path to a single branch and zero recording cost.
    pub trace: Option<TraceHandle>,
}

impl DriverConfig {
    /// The kernel this configuration resolves to (backends use this to size
    /// their per-worker [`KernelScratch`]).
    pub fn resolve_kernel(&self) -> ResolvedKernel {
        self.resolve_kernel_with(self.pruning.enabled())
    }

    /// [`DriverConfig::resolve_kernel`] with an explicit pruning flag (the
    /// driver re-gates pruning on the algorithm's eligibility). Tuned
    /// tiles, when present, replace the heuristic tile shape.
    pub fn resolve_kernel_with(&self, pruning: bool) -> ResolvedKernel {
        let rk = self.kernel.resolve(self.k, self.d, pruning);
        match self.tiles {
            Some((rt, ct)) => rk.with_tiles(rt, ct, self.k),
            None => rk,
        }
    }
}

/// What one worker reports after its compute super-phase.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Pruning outcome counters.
    pub counters: PruneCounters,
    /// Assignments changed by this worker.
    pub reassigned: u64,
    /// Rows whose data was actually touched.
    pub rows_accessed: u64,
    /// Exact access tally, when the backend tracks them (knori cost model).
    pub tally: Option<AccessTally>,
    /// Backend-defined auxiliary counter (knors: row-cache hits).
    pub aux: u64,
}

impl WorkerReport {
    /// Fold another worker's report into this aggregate (tallies collect
    /// into a vector at the call site, not here).
    fn absorb(&mut self, o: &WorkerReport) {
        self.counters.merge(&o.counters);
        self.reassigned += o.reassigned;
        self.rows_accessed += o.rows_accessed;
        self.aux += o.aux;
    }
}

/// Read-only view of the iteration state handed to [`LloydBackend::compute`].
pub struct IterView<'a> {
    /// Current iteration, 0-based.
    pub iter: usize,
    /// Whether any pruning scheme is active (`scheme.enabled()`, cached
    /// because it gates the hot per-row dispatch).
    pub pruning: bool,
    /// The active pruning scheme.
    pub scheme: Pruning,
    /// Current centroids (`C^t`).
    pub cents: &'a Centroids,
    /// MTI drift/threshold state for this iteration (zero-sized unless the
    /// scheme is [`Pruning::Mti`]).
    pub mti: &'a MtiIterState,
    /// Yinyang grouping/drift state (zero-sized unless the scheme is
    /// [`Pruning::Yinyang`]).
    pub yy: &'a YinyangState,
    /// Per-row assignments (disjoint task ownership).
    pub assign: &'a SharedRows<u32>,
    /// Per-row upper bounds (MTI and Yinyang).
    pub upper: &'a SharedRows<f64>,
    /// Per-row × per-group Yinyang lower bounds (`n·t`, row-major; empty
    /// unless the scheme is [`Pruning::Yinyang`]).
    pub lower: &'a SharedRows<f64>,
    /// The iteration's task queue.
    pub queue: &'a TaskQueue,
    /// The resolved assignment kernel for this run.
    pub kernel: ResolvedKernel,
    /// Cached centroid squared norms (empty unless the norm-trick path is
    /// active; maintained incrementally by the coordinator from drift).
    pub cnorms: &'a [f64],
    /// The clustering algorithm this run executes (see [`crate::algo`]).
    pub algo: &'a dyn MmAlgorithm,
    /// Global row id of local row 0 (see [`DriverConfig::row_offset`]).
    pub row_offset: usize,
    /// Cached `algo.is_lloyd()` — true routes the legacy bitwise paths.
    pub is_lloyd: bool,
    /// Cached `algo.subsamples()` — false skips the per-row scope call.
    pub scoped: bool,
    /// This worker's span recorder for the iteration, when tracing is on.
    /// Backends with staged I/O (knors) record their fetch/hit/miss/
    /// scatter intervals through it; measurement-only by construction.
    pub tracer: Option<WorkerTracer<'a>>,
}

impl IterView<'_> {
    /// Whether local row `r` participates in this iteration's map phase
    /// (mini-batch subsampling; checked before any data access or I/O).
    #[inline]
    pub fn in_scope(&self, r: usize) -> bool {
        !self.scoped || self.algo.row_in_scope(self.row_offset + r, self.iter)
    }
}

/// What a [`LloydBackend::reduce`] implementation reports about the global
/// reduction it performed (all zeros for single-machine engines).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReduceReport {
    /// Wire bytes this process sent during the reduction.
    pub comm_bytes: u64,
    /// Maximum wire bytes any rank sent during the reduction.
    pub max_rank_comm_bytes: u64,
    /// Modeled wire time of the reduction on the reference cluster.
    pub modeled_comm_ns: f64,
}

/// The per-engine plug-in: how rows are fetched and what happens at the
/// engine-specific protocol points.
pub trait LloydBackend: Sync {
    /// Called once per worker thread before the first iteration
    /// (knori binds the thread to its NUMA node here).
    fn worker_start(&self, _w: usize) {}

    /// Coordinator-only hook before barrier A of each iteration
    /// (knors decides row-cache refreshes here).
    fn pre_iteration(&self, _iter: usize) {}

    /// The compute super-phase for worker `w`: drain `view.queue`, fetch
    /// row data however this engine does, and update `accum` plus the
    /// shared per-row state via the driver's row helpers.
    fn compute(&self, w: usize, view: &IterView<'_>, accum: &mut LocalAccum) -> WorkerReport;

    /// Coordinator hook between the local merge and the centroid update.
    /// knord allreduces `sums`, `counts`, the per-cluster contribution
    /// `weights` and the scalar totals in `totals` across ranks here; the
    /// defaults leave everything local. (`weights` carry data only for
    /// weighted algorithms — they are zeros on the Lloyd fast path.)
    fn reduce(
        &self,
        _iter: usize,
        _sums: &mut [f64],
        _counts: &mut [i64],
        _weights: &mut [f64],
        _totals: &mut WorkerReport,
    ) -> ReduceReport {
        ReduceReport::default()
    }

    /// Coordinator hook after the drift pass of a Yinyang iteration:
    /// globalize the per-group drift maxima. Every rank computes identical
    /// values from the identically-reduced centroids, so knord's
    /// max-allreduce here is bitwise a no-op — it exists to keep ranks
    /// lockstep-verified and to account the O(t) wire extension. Returns
    /// the wire bytes this process sent (0 for single-machine engines).
    fn sync_group_drift(&self, _iter: usize, _group_drift: &mut [f64]) -> u64 {
        0
    }

    /// Coordinator hook after the iteration's statistics are final
    /// (knors records its I/O statistics here). `aux_total` is the sum of
    /// the workers' backend-defined [`WorkerReport::aux`] counters.
    fn end_iteration(&self, _iter: usize, _stats: &IterStats, _aux_total: u64) {}
}

/// A `Send + Sync` raw pointer to a shared `f64` buffer, used for the
/// barrier-ordered, row-disjoint parallel ccdist writes (the same manual
/// discipline as [`ExclusiveCell`], expressed at element granularity).
struct RawSlicePtr(*mut f64);
// Safety: all access is disjoint-by-construction and barrier-ordered.
unsafe impl Send for RawSlicePtr {}
unsafe impl Sync for RawSlicePtr {}

/// Everything a finished driver run hands back to the engine.
#[derive(Debug)]
pub struct DriverOutcome {
    /// Final centroids.
    pub centroids: Centroids,
    /// Final per-row assignments.
    pub assignments: Vec<u32>,
    /// Per-iteration statistics.
    pub iters: Vec<IterStats>,
    /// Per-iteration reduction reports (meaningful for knord).
    pub reduces: Vec<ReduceReport>,
    /// Whether the run converged before the iteration cap.
    pub converged: bool,
    /// Per-phase fold of this run's spans (`Some` iff tracing was on).
    pub phases: Option<PhaseBreakdown>,
}

/// Run the full ||Lloyd's protocol: spawn `cfg.nthreads` workers, iterate
/// until convergence or the cap, and return the outcome. Equivalent to
/// [`run_mm`] with the canonical Lloyd algorithm.
///
/// `queue` must be empty; the driver fills it from `placement` each
/// iteration. `init` supplies the starting centroids.
pub fn run_lloyd<B: LloydBackend>(
    cfg: &DriverConfig,
    init: Centroids,
    placement: &Placement,
    queue: &TaskQueue,
    backend: &B,
) -> DriverOutcome {
    run_mm(cfg, init, placement, queue, backend, &LloydAlgo)
}

/// Run the shared map/merge/reduce/update protocol for an arbitrary
/// [`MmAlgorithm`]: spawn `cfg.nthreads` workers, iterate until the
/// algorithm declares convergence or the cap, and return the outcome.
///
/// For the canonical Lloyd instance every code path, accumulation order
/// and comparison is the pre-trait one — the output is bitwise identical
/// to the historical `run_lloyd`. Non-Lloyd algorithms run the generic
/// map/update path with pruning forced off (MTI's clauses are only sound
/// for exact-Euclidean hard-assignment mean updates).
pub fn run_mm<B: LloydBackend>(
    cfg: &DriverConfig,
    mut init: Centroids,
    placement: &Placement,
    queue: &TaskQueue,
    backend: &B,
    algo: &dyn MmAlgorithm,
) -> DriverOutcome {
    let (k, d, n, nthreads) = (cfg.k, cfg.d, cfg.n, cfg.nthreads);
    assert_eq!(init.k(), k, "init centroid count mismatch");
    assert_eq!(init.d, d, "init dimensionality mismatch");
    assert_eq!(placement.nthreads(), nthreads);
    assert_eq!(placement.nrow(), n);

    // Pruning requires the algorithm's blessing (engines also gate this;
    // the recompute here makes the invariant local).
    let scheme = if algo.prune_eligible() { cfg.pruning } else { Pruning::None };
    let cfg_pruning = scheme.enabled();
    let yinyang = scheme == Pruning::Yinyang;
    let is_lloyd = algo.is_lloyd();
    let scoped = algo.subsamples();
    let uses_weights = algo.uses_weights();
    algo.prepare_init(&mut init);

    let rk = cfg.resolve_kernel_with(cfg_pruning);
    // Norm-trick/GEMM centroid-norm cache, seeded from the initial
    // centroids and thereafter refreshed only for drifted centroids.
    let cnorms_cell = ExclusiveCell::new(if rk.kind.needs_cnorms() {
        let mut v = vec![0.0f64; k];
        centroid_sqnorms(&init, &mut v);
        v
    } else {
        Vec::new()
    });
    // For large k the O(k²·d) distance-matrix recompute dominates the
    // coordinator window; the workers are idling at the next barrier, so
    // they fill disjoint row slices of the (unmirrored) triangle instead.
    // Yinyang has no distance matrix — its per-iteration state is O(k+t).
    let parallel_cc = scheme == Pruning::Mti && nthreads > 1 && k > MIRROR_MAX_K;

    // One-time Yinyang centroid grouping, before any worker spawns. It is
    // deterministic in `init`, so every knord rank derives the identical
    // grouping without a wire exchange.
    let yy_init = if yinyang { YinyangState::group(&init) } else { YinyangState::empty() };
    let ngroups = yy_init.t();

    // Shared engine state (see module docs for the barrier protocol).
    let centroids = ExclusiveCell::new(init);
    let next_cents = ExclusiveCell::new(Centroids::zeros(k, d));
    let mti = ExclusiveCell::new(MtiIterState::new(if scheme == Pruning::Mti { k } else { 0 }));
    let yy_cell = ExclusiveCell::new(yy_init);
    // Base of the ccdist buffer for the parallel recompute phase. The
    // coordinator re-derives this every iteration from its live exclusive
    // borrow (keeping the pointer's provenance valid — no `&mut` to the MTI
    // state is created between the capture and the workers' writes), and
    // barriers D/E order the disjoint row writes against all readers.
    let cc_base = ExclusiveCell::new(RawSlicePtr(std::ptr::null_mut()));
    let assign: SharedRows<u32> = SharedRows::new(n, u32::MAX);
    let upper: SharedRows<f64> = SharedRows::new(n, f64::INFINITY);
    // Yinyang per-row group lower bounds (`n·t`, row-major). Allocated
    // zeroed so pages stay lazy; iteration 0 writes every slot from the
    // row's owning worker, first-touching the bound pages on that worker's
    // NUMA node — the same persistent-bound discipline as `upper`.
    let lower: SharedRows<f64> = SharedRows::new(if yinyang { n * ngroups } else { 0 }, 0.0);
    let merged_sums: SharedRows<f64> = SharedRows::new(k * d, 0.0);
    let merged_counts = ExclusiveCell::new(vec![0i64; k]);
    let merged_weights = ExclusiveCell::new(vec![0.0f64; k]);
    // Coordinator staging for the merged sums handed to `reduce` —
    // persistent so steady-state iterations never allocate.
    let sums_staging = ExclusiveCell::new(vec![0.0f64; k * d]);
    // Persistent global sums/counts for MTI delta accumulation.
    let persistent = ExclusiveCell::new((vec![0.0f64; k * d], vec![0i64; k]));
    let accums: Vec<ExclusiveCell<LocalAccum>> =
        (0..nthreads).map(|_| ExclusiveCell::new(LocalAccum::new(k, d))).collect();
    let reports: Vec<ExclusiveCell<WorkerReport>> =
        (0..nthreads).map(|_| ExclusiveCell::new(WorkerReport::default())).collect();
    let stop = AtomicBool::new(false);
    let converged = AtomicBool::new(false);
    let barrier = Barrier::new(nthreads);
    let dim_slices = knor_matrix::partition_rows(k * d, nthreads);
    // Per-node read replicas of the iteration state (see `crate::replica`):
    // each populated node's slot is installed before the first iteration and
    // op-log-updated after every centroid update by that node's designated
    // writer (its lowest-id worker), always between barriers P and A.
    let replicas = cfg.replication.then(|| NodeReplicas::new(placement.nnodes()));
    let oplog = ExclusiveCell::new(OpLog::default());
    // Nodes that host at least one worker — only their slots get a replica,
    // and the `--stats` publish accounting counts exactly those copies.
    let populated_nodes = (0..placement.nnodes())
        .filter(|&nd| placement.threads_on_node(NodeId(nd)).next().is_some())
        .count() as u64;

    queue.refill(placement, cfg.task_size);

    // All trace allocation happens here, before any worker spawns; the
    // traced-off path below is a single `Option` branch per record site.
    let tgroup = cfg.trace.as_ref().map(|h| h.buf.register(h.pid, nthreads, 0));

    let mut iter_stats: Vec<IterStats> = Vec::new();
    let mut reduce_reports: Vec<ReduceReport> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(nthreads);
        for w in 0..nthreads {
            let centroids = &centroids;
            let next_cents = &next_cents;
            let mti = &mti;
            let yy_cell = &yy_cell;
            let assign = &assign;
            let upper = &upper;
            let lower = &lower;
            let merged_sums = &merged_sums;
            let merged_counts = &merged_counts;
            let merged_weights = &merged_weights;
            let persistent = &persistent;
            let accums = &accums;
            let reports = &reports;
            let stop = &stop;
            let converged = &converged;
            let barrier = &barrier;
            let backend = &backend;
            let cnorms_cell = &cnorms_cell;
            let sums_staging = &sums_staging;
            let cc_base = &cc_base;
            let replicas = &replicas;
            let oplog = &oplog;
            let tgroup = &tgroup;
            let dim_slice = dim_slices[w].clone();
            handles.push(s.spawn(move || {
                backend.worker_start(w);
                let my_node = placement.node_of_thread(w).0;
                let is_writer = replicas.is_some()
                    && placement.threads_on_node(NodeId(my_node)).next() == Some(w);
                if let Some(reps) = replicas.as_ref() {
                    if is_writer {
                        // Clone the canonical state into this node's slot
                        // *after* `worker_start` bound the thread, so
                        // first-touch places the replica's pages on this
                        // node. Safety: pre-loop install; every reader is on
                        // the far side of the first barrier A.
                        let seed = ReplicaState::from_canonical(
                            unsafe { centroids.get() },
                            unsafe { cnorms_cell.get() },
                            unsafe { mti.get() },
                            unsafe { yy_cell.get() },
                        );
                        unsafe { *reps.slot_mut(my_node) = Some(seed) };
                    }
                }
                let pruning = cfg_pruning;
                // Only the coordinator records; reserving the cap up front
                // keeps the iteration loop allocation-free. The reserve is
                // clamped so an effectively-unbounded cap (run-until-
                // convergence callers) neither overflows nor pre-allocates
                // gigabytes; runs longer than the clamp merely fall back to
                // amortized growth.
                let reserve = cfg.max_iters.min(1024);
                let (mut stats, mut reduces) = if w == 0 {
                    (Vec::with_capacity(reserve), Vec::with_capacity(reserve))
                } else {
                    (Vec::new(), Vec::new())
                };
                let mut iter = 0usize;

                loop {
                    // Safety: each worker claims only its own slot, and all
                    // trace reads happen after the scope joins.
                    let tr = tgroup
                        .as_deref()
                        .map(|g| unsafe { g.tracer(w, my_node as u32, iter as u32) });
                    if w == 0 {
                        backend.pre_iteration(iter);
                    }
                    let ta = tr.as_ref().map(|t| t.now());
                    barrier.wait(); // A — state published by coordinator
                    if let (Some(t), Some(ta)) = (tr.as_ref(), ta) {
                        t.record(Phase::BarrierA, ta, 0);
                    }
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let t0 = std::time::Instant::now();
                    let tc = tr.as_ref().map(|t| t.now());

                    // ---- compute super-phase (backend-specific) ----------
                    // Safety: barrier A separates us from the coordinator's
                    // writes (and the node writers' replica publishes);
                    // nobody writes these cells during compute. With
                    // replication on, all read-shared state comes from this
                    // worker's node-local replica — bitwise equal to the
                    // canonical copy (see `crate::replica`), so the
                    // trajectory is unchanged while the reads stay on-node.
                    let replica = replicas.as_ref().map(|reps| unsafe { reps.get(my_node) });
                    let view = IterView {
                        iter,
                        pruning,
                        scheme,
                        cents: replica.map_or_else(|| unsafe { centroids.get() }, |r| &r.cents),
                        mti: replica.map_or_else(|| unsafe { mti.get() }, |r| &r.mti),
                        yy: replica.map_or_else(|| unsafe { yy_cell.get() }, |r| &r.yy),
                        assign,
                        upper,
                        lower,
                        queue,
                        kernel: rk,
                        cnorms: replica.map_or_else(
                            || unsafe { cnorms_cell.get() }.as_slice(),
                            |r| r.cnorms.as_slice(),
                        ),
                        algo,
                        row_offset: cfg.row_offset,
                        is_lloyd,
                        scoped,
                        tracer: tr,
                    };
                    let accum = unsafe { accums[w].get_mut() };
                    let report = backend.compute(w, &view, accum);
                    if let (Some(t), Some(tc)) = (tr.as_ref(), tc) {
                        // Compute covers the whole drain; staged-I/O spans
                        // recorded by the backend nest inside it.
                        t.record(Phase::Compute, tc, report.rows_accessed * (d as u64) * 8);
                    }
                    // Safety: own slot; read by worker 0 only after B.
                    unsafe { *reports[w].get_mut() = report };

                    let tb = tr.as_ref().map(|t| t.now());
                    barrier.wait(); // B — all accumulators and reports final
                    if let (Some(t), Some(tb)) = (tr.as_ref(), tb) {
                        t.record(Phase::BarrierB, tb, 0);
                    }

                    // ---- parallel merge (dimension-sliced) ---------------
                    let tm = tr.as_ref().map(|t| t.now());
                    for j in dim_slice.clone() {
                        let mut sum = 0.0;
                        for a in accums.iter() {
                            // Safety: accumulators are read-only between B and C.
                            sum += unsafe { a.get() }.sums[j];
                        }
                        // Safety: dim slices are disjoint across workers.
                        unsafe { *merged_sums.get_mut(j) = sum };
                    }
                    if w == 0 {
                        // Safety: coordinator-only write between B and C.
                        let mc = unsafe { merged_counts.get_mut() };
                        for (c, m) in mc.iter_mut().enumerate() {
                            *m = accums.iter().map(|a| unsafe { a.get() }.counts[c]).sum();
                        }
                        if uses_weights {
                            // Only weighted updates read the lane; for
                            // everyone else (Lloyd included) the merged
                            // weights stay zero and cost nothing here.
                            let mw = unsafe { merged_weights.get_mut() };
                            for (c, m) in mw.iter_mut().enumerate() {
                                *m = accums.iter().map(|a| unsafe { a.get() }.weights[c]).sum();
                            }
                        }
                    }

                    if let (Some(t), Some(tm)) = (tr.as_ref(), tm) {
                        t.record(Phase::Merge, tm, dim_slice.len() as u64 * 8);
                    }

                    let tcw = tr.as_ref().map(|t| t.now());
                    barrier.wait(); // C — merged sums/counts complete
                    if let (Some(t), Some(tcw)) = (tr.as_ref(), tcw) {
                        t.record(Phase::BarrierC, tcw, 0);
                    }

                    let tu = tr.as_ref().map(|t| t.now());
                    if w == 0 {
                        // ---- coordinator window --------------------------
                        // Safety: exclusive window between C and next A.
                        let cents = unsafe { centroids.get_mut() };
                        let next = unsafe { next_cents.get_mut() };
                        let mc = unsafe { merged_counts.get_mut() };
                        let (psums, pcounts) = unsafe { persistent.get_mut() };

                        // Aggregate worker reports before the reduce so the
                        // backend can globalize the convergence scalars.
                        let mut totals = WorkerReport::default();
                        let mut tallies: Option<Vec<AccessTally>> = None;
                        for rep in reports.iter() {
                            // Safety: workers finished their reports before B.
                            let rep = unsafe { rep.get() };
                            totals.absorb(rep);
                            if let Some(t) = rep.tally.as_ref() {
                                tallies.get_or_insert_with(Vec::new).push(t.clone());
                            }
                        }

                        // Engine-specific global reduction (knord's
                        // allreduce); identity for single-machine engines.
                        let sums_view = unsafe { sums_staging.get_mut() };
                        for (j, s) in sums_view.iter_mut().enumerate() {
                            *s = unsafe { *merged_sums.get(j) };
                        }
                        let mw = unsafe { merged_weights.get_mut() };
                        let mut reduce_report =
                            backend.reduce(iter, sums_view, mc, mw, &mut totals);

                        if pruning {
                            // Bound-pruned delta path (MTI and Yinyang) —
                            // Lloyd only (the eligibility hook guarantees
                            // it), so the update is the mean over the
                            // persistent global sums.
                            for (p, s) in psums.iter_mut().zip(sums_view.iter()) {
                                *p += s;
                            }
                            for (p, c) in pcounts.iter_mut().zip(mc.iter()) {
                                *p += c;
                            }
                            finalize_means(psums, pcounts, cents, next);
                        } else if is_lloyd {
                            // Canonical instance: the historical call,
                            // bitwise identical to the pre-trait engine.
                            finalize_means(sums_view, mc, cents, next);
                        } else {
                            // Generic update phase (spherical renormalize,
                            // fuzzy weighted mean, mini-batch learning
                            // rate, ...), on globally-reduced state.
                            algo.update(&mut UpdateCtx {
                                iter,
                                sums: sums_view,
                                counts: mc,
                                weights: mw,
                                prev: cents,
                                next,
                            });
                        }

                        // One drift pass feeds convergence, the MTI state
                        // and the norm-trick cache (a zero-drift centroid
                        // did not move, so its cached norm stays valid).
                        let mut max_drift = 0.0f64;
                        {
                            // Safety: coordinator window.
                            let mut mti_mut =
                                (scheme == Pruning::Mti).then(|| unsafe { mti.get_mut() });
                            let mut yy_mut = yinyang.then(|| unsafe { yy_cell.get_mut() });
                            let mut cn =
                                rk.kind.needs_cnorms().then(|| unsafe { cnorms_cell.get_mut() });
                            // The drift pass doubles as the op-log recorder:
                            // exactly the centroids whose state the canonical
                            // copy refreshes are the ones the node writers
                            // copy (iteration 0 publishes in full to root the
                            // replicas' bitwise induction — their ccdist was
                            // installed zeroed while the canonical rebuild
                            // fills every pair).
                            let mut log = replicas.is_some().then(|| unsafe { oplog.get_mut() });
                            if let Some(l) = log.as_mut() {
                                l.begin(iter == 0);
                            }
                            for c in 0..k {
                                let dr = dist(cents.mean(c), next.mean(c));
                                max_drift = max_drift.max(dr);
                                if let Some(m) = mti_mut.as_mut() {
                                    m.drift[c] = dr;
                                }
                                if let Some(y) = yy_mut.as_mut() {
                                    y.drift[c] = dr;
                                }
                                if dr != 0.0 {
                                    if let Some(l) = log.as_mut() {
                                        l.record(c);
                                    }
                                    if let Some(cn) = cn.as_mut() {
                                        cn[c] = sqnorm(next.mean(c));
                                    }
                                }
                            }
                            if parallel_cc {
                                if let Some(m) = mti_mut.as_mut() {
                                    // Publish the buffer base from the
                                    // still-live exclusive borrow; the MTI
                                    // state is not touched again (by
                                    // reference) until finalize after E.
                                    // Safety: coordinator window.
                                    unsafe { cc_base.get_mut() }.0 = m.ccdist.as_mut_ptr();
                                }
                            }
                        }
                        if scheme == Pruning::Mti && !parallel_cc {
                            // Safety: coordinator window.
                            unsafe { mti.get_mut() }.rebuild(next);
                        }
                        if yinyang {
                            // Fold per-centroid drifts into per-group maxima
                            // and let the backend globalize them (knord's
                            // O(t) allreduce extension; identity elsewhere).
                            // Runs before barrier P so replicas copy the
                            // synced values.
                            // Safety: coordinator window.
                            let y = unsafe { yy_cell.get_mut() };
                            y.update_group_drift();
                            let gd_bytes = backend.sync_group_drift(iter, &mut y.group_drift);
                            reduce_report.comm_bytes += gd_bytes;
                            reduce_report.max_rank_comm_bytes += gd_bytes;
                        }
                        std::mem::swap(cents, next);

                        stats.push(IterStats {
                            iter,
                            reassigned: totals.reassigned,
                            rows_accessed: totals.rows_accessed,
                            prune: totals.counters,
                            wall_ns: t0.elapsed().as_nanos() as u64,
                            queue: queue.stats(),
                            tallies,
                            max_drift,
                            publish_bytes: 0,
                        });
                        reduces.push(reduce_report);
                        backend.end_iteration(iter, stats.last().expect("just pushed"), totals.aux);
                        queue.reset_stats();

                        let done_iters = iter + 1;
                        let is_converged = algo.converged(totals.reassigned, max_drift, cfg.tol);
                        if is_converged {
                            converged.store(true, Ordering::Release);
                        }
                        if is_converged || done_iters >= cfg.max_iters {
                            stop.store(true, Ordering::Release);
                        } else {
                            queue.refill(placement, cfg.task_size);
                            if replicas.is_some() {
                                // Record what the publish phase below will
                                // copy (one delta per populated node); the
                                // final iteration publishes nothing.
                                // Safety: coordinator window; read-only.
                                let log = unsafe { oplog.get() };
                                let s = stats.last_mut().expect("just pushed");
                                s.publish_bytes = log.bytes_per_node(
                                    k,
                                    d,
                                    scheme,
                                    ngroups,
                                    rk.kind.needs_cnorms(),
                                ) * populated_nodes;
                            }
                        }
                        if let (Some(t), Some(tu)) = (tr.as_ref(), tu) {
                            t.record(Phase::Update, tu, 0);
                        }
                    }

                    if parallel_cc {
                        let td = tr.as_ref().map(|t| t.now());
                        barrier.wait(); // D — updated centroids published
                        if let (Some(t), Some(td)) = (tr.as_ref(), td) {
                            t.record(Phase::BarrierD, td, 0);
                        }
                        if !stop.load(Ordering::Acquire) {
                            let tcc = tr.as_ref().map(|t| t.now());
                            // Each worker owns rows i ≡ w (mod T) of the
                            // distance matrix; interleaving balances the
                            // shrinking triangle rows. Only the upper
                            // triangle is written (k > MIRROR_MAX_K, so
                            // lookups are ordered) — row-disjoint writes
                            // through the captured base pointer.
                            let cents_now = unsafe { centroids.get() };
                            // Safety: published by the coordinator before D.
                            let cc = unsafe { cc_base.get() }.0;
                            let mut i = w;
                            while i < k {
                                let ci = cents_now.mean(i);
                                for j in (i + 1)..k {
                                    let dij = dist(ci, cents_now.mean(j));
                                    // Safety: (i, j) pairs are disjoint
                                    // across workers; D/E barriers order
                                    // these writes against all readers.
                                    unsafe { *cc.add(i * k + j) = dij };
                                }
                                i += nthreads;
                            }
                            if let (Some(t), Some(tcc)) = (tr.as_ref(), tcc) {
                                t.record(Phase::CcDist, tcc, 0);
                            }
                        }
                        let te = tr.as_ref().map(|t| t.now());
                        barrier.wait(); // E — distance matrix complete
                        if let (Some(t), Some(te)) = (tr.as_ref(), te) {
                            t.record(Phase::BarrierE, te, 0);
                        }
                        if w == 0 && !stop.load(Ordering::Acquire) {
                            // Safety: coordinator-exclusive until the next
                            // barrier A.
                            unsafe { mti.get_mut() }.finalize_half_min();
                        }
                    }

                    if let Some(reps) = replicas.as_ref() {
                        // P — the canonical state (swapped centroids, norm
                        // cache, serially-rebuilt or parallel-filled MTI
                        // tables) is final for this iteration; order the
                        // node writers' reads after all of those writes.
                        //
                        // On `parallel_cc` runs worker 0 finalizes half_min
                        // between E and P with no barrier of its own — P is
                        // what publishes that write too.
                        let tp = tr.as_ref().map(|t| t.now());
                        barrier.wait();
                        if let (Some(t), Some(tp)) = (tr.as_ref(), tp) {
                            t.record(Phase::BarrierP, tp, 0);
                        }
                        if is_writer && !stop.load(Ordering::Acquire) {
                            let tpub = tr.as_ref().map(|t| t.now());
                            // Safety: designated writer between P and the
                            // next A; the canonical cells are read-only in
                            // this phase and the slot is writer-exclusive.
                            let log = unsafe { oplog.get() };
                            let slot = unsafe { reps.slot_mut(my_node) };
                            slot.as_mut().expect("writer installed its replica").apply(
                                log,
                                unsafe { centroids.get() },
                                unsafe { cnorms_cell.get() },
                                (scheme == Pruning::Mti).then(|| unsafe { mti.get() }),
                                yinyang.then(|| unsafe { yy_cell.get() }),
                            );
                            if let (Some(t), Some(tpub)) = (tr.as_ref(), tpub) {
                                let bytes = log.bytes_per_node(
                                    k,
                                    d,
                                    scheme,
                                    ngroups,
                                    rk.kind.needs_cnorms(),
                                );
                                t.record(Phase::Publish, tpub, bytes);
                            }
                        }
                    }

                    // Reset own accumulator for the next iteration.
                    accum.reset();
                    iter += 1;
                }

                (stats, reduces)
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            let (stats, reduces) = h.join().expect("engine worker panicked");
            if w == 0 {
                iter_stats = stats;
                reduce_reports = reduces;
            }
        }
    });

    DriverOutcome {
        centroids: centroids.into_inner(),
        assignments: assign.snapshot(),
        iters: iter_stats,
        reduces: reduce_reports,
        converged: converged.load(Ordering::Acquire),
        // All workers joined above, so the group's rings are quiescent.
        // The fold covers only this run's group; engines that share one
        // buffer across ranks (knord) fold the buffer instead.
        phases: tgroup.as_deref().map(|g| g.breakdown()),
    }
}

// ---------------------------------------------------------------------------
// Shared per-row state machine
// ---------------------------------------------------------------------------

/// Drain worker `w`'s share of the task queue through the blocked
/// assignment kernel where the iteration allows it, falling back to the
/// per-row state machine everywhere else.
///
/// Full-scan iterations (iteration 0, or pruning disabled) batch each
/// task's rows into `row_tile`-sized blocks: rows are staged contiguously
/// into `scratch.data` via `fetch`, assigned by the selected kernel, and
/// post-processed in row order — so counters, accumulation order and (on
/// the tiled path) every bit of the result match [`drain_queue`] exactly.
/// MTI iterations (`iter > 0`, pruning on) are inherently per-row (each row
/// carries its own bound state) and take the same path as [`drain_queue`].
pub fn drain_queue_kernel<'data, F>(
    w: usize,
    view: &IterView<'_>,
    accum: &mut LocalAccum,
    rep: &mut WorkerReport,
    scratch: &mut KernelScratch,
    mut fetch: F,
) where
    F: FnMut(usize) -> &'data [f64],
{
    if !view.is_lloyd {
        // Non-Lloyd algorithms take the generic map/update path (pruning
        // is always off for them, so every iteration is a full pass over
        // the in-scope rows).
        drain_queue_algo(w, view, accum, rep, scratch, fetch);
        return;
    }
    let full_scan = view.iter == 0 || !view.pruning;
    if !full_scan || view.kernel.kind == ResolvedKind::Scalar {
        drain_queue(w, view, accum, rep, fetch);
        return;
    }
    let d = view.cents.d;
    while let Some(task) = view.queue.next(w) {
        let mut start = task.rows.start;
        while start < task.rows.end {
            let end = (start + view.kernel.row_tile).min(task.rows.end);
            let m = end - start;
            for (i, r) in (start..end).enumerate() {
                scratch.data[i * d..(i + 1) * d].copy_from_slice(fetch(r));
            }
            process_block_kernel(
                start..end,
                &scratch.data[..m * d],
                view,
                accum,
                rep,
                &mut scratch.best,
                &mut scratch.best_dist,
            );
            start = end;
        }
    }
}

/// Run the blocked assignment kernel over one staged contiguous block and
/// commit its decisions in staging order: kernel dispatch, counter
/// accounting, then [`apply_full_assign`] per row. Shared by the
/// knori/knord drain path above and the SEM hit/miss block path so the
/// counter semantics and commit protocol can never diverge between
/// engines. Distances are only materialized when pruning needs the upper
/// bounds.
pub fn process_block_kernel<I>(
    rows: I,
    block: &[f64],
    view: &IterView<'_>,
    accum: &mut LocalAccum,
    rep: &mut WorkerReport,
    best: &mut Vec<u32>,
    best_dist: &mut Vec<f64>,
) where
    I: ExactSizeIterator<Item = usize>,
{
    let m = rows.len();
    if m == 0 {
        return;
    }
    let d = view.cents.d;
    debug_assert_eq!(block.len(), m * d);
    assign_rows(
        block,
        d,
        view.cents,
        &view.kernel,
        view.cnorms,
        best,
        best_dist,
        view.pruning, // only the bound-establishing pass consumes distances
    );
    rep.rows_accessed += m as u64;
    rep.counters.dist_computations += (m * view.cents.k()) as u64;
    let yy_init = view.scheme == Pruning::Yinyang && view.iter == 0;
    for (i, r) in rows.enumerate() {
        let v = &block[i * d..(i + 1) * d];
        rep.reassigned += u64::from(apply_full_assign(
            r,
            v,
            best[i] as usize,
            best_dist[i],
            view.pruning,
            view.assign,
            view.upper,
            accum,
        ));
        if yy_init {
            // Establish the row's group lower bounds right after the
            // kernel's bound-establishing pass (second scalar pass, as the
            // Yinyang paper's initial iteration does).
            yy_init_bounds(
                r,
                v,
                best[i] as usize,
                view.cents,
                view.yy,
                view.lower,
                &mut rep.counters,
            );
        }
    }
}

/// Drain worker `w`'s share of the task queue through the generic
/// algorithm path: in-scope rows are staged contiguously in
/// `row_tile`-sized blocks, mapped by [`MmAlgorithm::map_block`] (which
/// may batch through the kernel layer), and committed in staging order.
/// Subsampled-out rows are skipped *before* `fetch` — the same no-touch
/// discipline as a Clause-1 skip.
pub fn drain_queue_algo<'data, F>(
    w: usize,
    view: &IterView<'_>,
    accum: &mut LocalAccum,
    rep: &mut WorkerReport,
    scratch: &mut KernelScratch,
    mut fetch: F,
) where
    F: FnMut(usize) -> &'data [f64],
{
    let d = view.cents.d;
    let tile = view.kernel.row_tile.max(1);
    debug_assert!(scratch.data.len() >= tile * d);
    while let Some(task) = view.queue.next(w) {
        scratch.row_ids.clear();
        for r in task.rows {
            if !view.in_scope(r) {
                continue;
            }
            let m = scratch.row_ids.len();
            scratch.data[m * d..(m + 1) * d].copy_from_slice(fetch(r));
            scratch.row_ids.push(r);
            if scratch.row_ids.len() == tile {
                process_block_algo(
                    scratch.row_ids.iter().copied(),
                    &scratch.data[..tile * d],
                    view,
                    accum,
                    rep,
                    &mut scratch.best,
                    &mut scratch.weights,
                    &mut scratch.best_dist,
                );
                scratch.row_ids.clear();
            }
        }
        let m = scratch.row_ids.len();
        if m > 0 {
            process_block_algo(
                scratch.row_ids.iter().copied(),
                &scratch.data[..m * d],
                view,
                accum,
                rep,
                &mut scratch.best,
                &mut scratch.weights,
                &mut scratch.best_dist,
            );
            scratch.row_ids.clear();
        }
    }
}

/// Run the algorithm's map phase over one staged contiguous block and
/// commit its decisions in staging order: [`MmAlgorithm::map_block`]
/// dispatch, counter accounting, then per row the weighted accumulation
/// and the assignment store. Shared by the knori/knord generic drain above
/// and the SEM hit/miss block path, so the commit protocol can never
/// diverge between engines. `score` is reusable kernel scratch.
#[allow(clippy::too_many_arguments)]
pub fn process_block_algo<I>(
    rows: I,
    block: &[f64],
    view: &IterView<'_>,
    accum: &mut LocalAccum,
    rep: &mut WorkerReport,
    best: &mut Vec<u32>,
    weights: &mut Vec<f64>,
    score: &mut Vec<f64>,
) where
    I: ExactSizeIterator<Item = usize>,
{
    let m = rows.len();
    if m == 0 {
        return;
    }
    let d = view.cents.d;
    debug_assert_eq!(block.len(), m * d);
    view.algo.map_block(block, d, view.cents, best, weights, score);
    debug_assert_eq!(best.len(), m);
    debug_assert_eq!(weights.len(), m);
    rep.rows_accessed += m as u64;
    // One full candidate scan per row, whatever its metric.
    rep.counters.dist_computations += (m * view.cents.k()) as u64;
    for (i, r) in rows.enumerate() {
        let v = &block[i * d..(i + 1) * d];
        accum.add_weighted(best[i] as usize, v, weights[i]);
        // Safety: task-exclusive row ownership (see [`filter_row`]).
        let cur = unsafe { *view.assign.get(r) };
        rep.reassigned += u64::from(cur != best[i]);
        unsafe { *view.assign.get_mut(r) = best[i] };
    }
}

/// Drain worker `w`'s share of the task queue, dispatching every row
/// through the shared MTI/full-scan state machine. `fetch` supplies a
/// row's data (and may record backend bookkeeping like access tallies);
/// it is only called for rows that survive the Clause-1 filter.
///
/// Backends with per-row data access (knori, knord) build their whole
/// compute super-phase from this (through [`drain_queue_kernel`]); knors
/// cannot, because it filters whole tasks ahead of batched I/O, but it
/// shares the per-row helpers below.
pub fn drain_queue<'data, F>(
    w: usize,
    view: &IterView<'_>,
    accum: &mut LocalAccum,
    rep: &mut WorkerReport,
    mut fetch: F,
) where
    F: FnMut(usize) -> &'data [f64],
{
    let yy_on = view.scheme == Pruning::Yinyang;
    while let Some(task) = view.queue.next(w) {
        for r in task.rows {
            if view.iter > 0 && view.pruning {
                if yy_on {
                    // Global filter: decided before touching row data.
                    if !filter_row_yy(
                        r,
                        view.assign,
                        view.upper,
                        view.lower,
                        view.yy,
                        &mut rep.counters,
                    ) {
                        continue;
                    }
                    let v = fetch(r);
                    rep.rows_accessed += 1;
                    rep.reassigned += u64::from(process_row_yy(
                        r,
                        v,
                        view.cents,
                        view.yy,
                        view.assign,
                        view.upper,
                        view.lower,
                        accum,
                        &mut rep.counters,
                    ));
                    continue;
                }
                // Clause 1: decided before touching row data.
                if !filter_row(r, view.assign, view.upper, view.mti, &mut rep.counters) {
                    continue;
                }
                let v = fetch(r);
                rep.rows_accessed += 1;
                rep.reassigned += u64::from(process_row_mti(
                    r,
                    v,
                    view.cents,
                    view.mti,
                    view.assign,
                    view.upper,
                    accum,
                    &mut rep.counters,
                ));
            } else {
                // Full scan: first iteration, or pruning disabled.
                let v = fetch(r);
                rep.rows_accessed += 1;
                rep.reassigned += u64::from(process_row_full(
                    r,
                    v,
                    view.cents,
                    view.pruning,
                    view.assign,
                    view.upper,
                    accum,
                    &mut rep.counters,
                ));
                if yy_on && view.iter == 0 {
                    // Safety: task-exclusive row ownership; the full pass
                    // above just stored this row's assignment.
                    let a = unsafe { *view.assign.get(r) } as usize;
                    yy_init_bounds(r, v, a, view.cents, view.yy, view.lower, &mut rep.counters);
                }
            }
        }
    }
}

/// Clause-1 filter for one row of a task (`iter > 0`, pruning on).
///
/// Loosens the row's upper bound by its centroid's drift and writes it
/// back. Returns `true` when the row's data must be fetched (Clause 1 did
/// not fire).
///
/// # Safety contract
/// The caller's task must own row `r` for this iteration (the scheduler
/// hands each row to exactly one task).
#[inline]
pub fn filter_row(
    r: usize,
    assign: &SharedRows<u32>,
    upper: &SharedRows<f64>,
    mti: &MtiIterState,
    counters: &mut PruneCounters,
) -> bool {
    // Safety: task-exclusive row ownership (see doc).
    let a = unsafe { *assign.get(r) } as usize;
    let ub = unsafe { *upper.get(r) } + mti.drift[a];
    unsafe { *upper.get_mut(r) = ub };
    if ub <= mti.half_min[a] {
        counters.clause1_rows += 1;
        false
    } else {
        true
    }
}

/// Process a fetched row under MTI (`iter > 0`): the row's upper bound has
/// already been drift-loosened by [`filter_row`]. Returns `true` when the
/// assignment changed. Accumulates *deltas* into `accum`.
///
/// # Safety contract
/// As [`filter_row`]: the caller's task owns row `r`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn process_row_mti(
    r: usize,
    v: &[f64],
    cents: &Centroids,
    mti: &MtiIterState,
    assign: &SharedRows<u32>,
    upper: &SharedRows<f64>,
    accum: &mut LocalAccum,
    counters: &mut PruneCounters,
) -> bool {
    // Safety: task-exclusive row ownership (see doc).
    let a = unsafe { *assign.get(r) } as usize;
    let ub = unsafe { *upper.get(r) };
    let (new_a, new_ub) = mti_assign(v, cents, mti, a, ub, counters);
    let reassigned = new_a != a;
    if reassigned {
        accum.sub(a, v);
        accum.add(new_a, v);
        unsafe { *assign.get_mut(r) = new_a as u32 };
    }
    unsafe { *upper.get_mut(r) = new_ub };
    reassigned
}

/// Establish row `r`'s Yinyang group lower bounds after its iteration-0
/// full scan assigned it to `a`: `lower[g] = min d(v, c)` over the
/// non-assigned members `c` of group `g` (`+∞` for groups with no such
/// member). Costs `k − 1` scalar distances, exactly the Yinyang paper's
/// second initial pass.
///
/// # Safety contract
/// As [`filter_row`]: the caller's task owns row `r`.
#[inline]
pub fn yy_init_bounds(
    r: usize,
    v: &[f64],
    a: usize,
    cents: &Centroids,
    yy: &YinyangState,
    lower: &SharedRows<f64>,
    counters: &mut PruneCounters,
) {
    let t = yy.t();
    for g in 0..t {
        // Safety: task-exclusive row ownership (see doc).
        unsafe { *lower.get_mut(r * t + g) = f64::INFINITY };
    }
    for (c, &g) in yy.group_of.iter().enumerate() {
        if c == a {
            continue;
        }
        let dc = dist(v, cents.mean(c));
        counters.dist_computations += 1;
        let slot = unsafe { lower.get_mut(r * t + g as usize) };
        if dc < *slot {
            *slot = dc;
        }
    }
}

/// Yinyang global filter for one row of a task (`iter > 0`).
///
/// Loosens the row's upper bound by its centroid's drift and every group
/// lower bound by that group's maximum drift, writing all of them back.
/// Returns `true` when the row's data must be fetched (the global filter
/// did not fire). On a skip the row costs neither data access nor I/O —
/// the same Clause-1 discipline as MTI, but against the min of the group
/// bounds instead of the `½·min` centroid-separation threshold.
///
/// # Safety contract
/// As [`filter_row`]: the caller's task owns row `r`.
#[inline]
pub fn filter_row_yy(
    r: usize,
    assign: &SharedRows<u32>,
    upper: &SharedRows<f64>,
    lower: &SharedRows<f64>,
    yy: &YinyangState,
    counters: &mut PruneCounters,
) -> bool {
    let t = yy.t();
    // Safety: task-exclusive row ownership (see doc).
    let a = unsafe { *assign.get(r) } as usize;
    let u = unsafe { *upper.get(r) } + yy.drift[a];
    unsafe { *upper.get_mut(r) = u };
    let mut global_lower = f64::INFINITY;
    for g in 0..t {
        let slot = unsafe { lower.get_mut(r * t + g) };
        let lb = (*slot - yy.group_drift[g]).max(0.0);
        *slot = lb;
        if lb < global_lower {
            global_lower = lb;
        }
    }
    if u <= global_lower {
        counters.clause1_rows += 1;
        false
    } else {
        true
    }
}

/// Process a fetched row under Yinyang (`iter > 0`): bounds were already
/// drift-loosened by [`filter_row_yy`]. Tightens the upper bound with one
/// exact distance, re-tests the global filter (Clause 3), then scans only
/// the groups whose lower bound is violated (Clause 2), maintaining the
/// group bounds from the scanned distances. Returns `true` when the
/// assignment changed. Accumulates *deltas* into `accum`.
///
/// Counter ledger (steady state): every row satisfies
/// `clause2 + clause3 + dists = k` — with the Clause-1 rows contributing
/// `k` each — so `clause1·k + clause2 + clause3 + dists = n·k` exactly.
///
/// # Safety contract
/// As [`filter_row`]: the caller's task owns row `r`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn process_row_yy(
    r: usize,
    v: &[f64],
    cents: &Centroids,
    yy: &YinyangState,
    assign: &SharedRows<u32>,
    upper: &SharedRows<f64>,
    lower: &SharedRows<f64>,
    accum: &mut LocalAccum,
    counters: &mut PruneCounters,
) -> bool {
    let t = yy.t();
    let k = cents.k();
    // Safety: task-exclusive row ownership (see doc).
    let a0 = unsafe { *assign.get(r) } as usize;
    // Tighten with one exact distance and re-test the global filter.
    let mut u = dist(v, cents.mean(a0));
    counters.dist_computations += 1;
    let mut global_lower = f64::INFINITY;
    for g in 0..t {
        let lb = unsafe { *lower.get(r * t + g) };
        if lb < global_lower {
            global_lower = lb;
        }
    }
    if u <= global_lower {
        counters.clause3_prunes += (k - 1) as u64;
        unsafe { *upper.get_mut(r) = u };
        return false;
    }
    let g0 = yy.group_of[a0] as usize;
    let u0 = u;
    let mut a = a0;
    for g in 0..t {
        let lb = unsafe { *lower.get(r * t + g) };
        let members = yy.members(g);
        if u <= lb {
            // Group filter: every non-assigned member pruned at once. (At
            // this point `a` is either `a0` or a member of an *earlier*
            // group, so the candidate count is exact.)
            counters.clause2_prunes += (members.len() - usize::from(g == g0)) as u64;
            continue;
        }
        let mut new_group_lower = f64::INFINITY;
        for &c in members {
            let c = c as usize;
            // `c == a` can only be the original assignment here (a
            // reassignment target is never revisited), whose distance `u`
            // is already exact — skipping it is a pure work elimination.
            if c == a0 || c == a {
                continue;
            }
            let dc = dist(v, cents.mean(c));
            counters.dist_computations += 1;
            if dc < u {
                // The dethroned centroid's exact distance becomes a lower
                // bound for its group: folded into this scan's minimum if
                // it lives here, min-written into its own group's slot
                // otherwise (an earlier group's exact refresh stays exact;
                // a later group re-scans or folds `u0` below).
                let old_g = yy.group_of[a] as usize;
                if old_g == g {
                    if u < new_group_lower {
                        new_group_lower = u;
                    }
                } else {
                    let old_slot = unsafe { lower.get_mut(r * t + old_g) };
                    if u < *old_slot {
                        *old_slot = u;
                    }
                }
                a = c;
                u = dc;
            } else if dc < new_group_lower {
                new_group_lower = dc;
            }
        }
        // A scanned group's bound is *exact* afterwards, so overwrite the
        // slot rather than min-ing into it — a stale loosened bound must
        // not pin the group below its true distance forever (that would
        // make every later iteration re-scan it). The exceptions are
        // exact distances the scan skipped: `a0`'s (if it lives here and
        // was dethroned — its distance is the pre-scan `u0`).
        let mut exact = new_group_lower;
        if g == g0 && a != a0 && u0 < exact {
            exact = u0;
        }
        unsafe { *lower.get_mut(r * t + g) = exact };
    }
    let reassigned = a != a0;
    if reassigned {
        accum.sub(a0, v);
        accum.add(a, v);
        unsafe { *assign.get_mut(r) = a as u32 };
    }
    unsafe { *upper.get_mut(r) = u };
    reassigned
}

/// Process a row with a full `k`-way scan (iteration 0, or pruning off).
/// With pruning on this is the delta-establishing first pass; without, the
/// accumulator collects plain full sums. Returns `true` on reassignment.
///
/// # Safety contract
/// As [`filter_row`]: the caller's task owns row `r`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn process_row_full(
    r: usize,
    v: &[f64],
    cents: &Centroids,
    pruning: bool,
    assign: &SharedRows<u32>,
    upper: &SharedRows<f64>,
    accum: &mut LocalAccum,
    counters: &mut PruneCounters,
) -> bool {
    let k = cents.k();
    let (a, da) = nearest(v, &cents.means, k);
    counters.dist_computations += k as u64;
    apply_full_assign(r, v, a, da, pruning, assign, upper, accum)
}

/// Commit one full-scan assignment decision `(a, da)` for row `r`:
/// accumulate (deltas under pruning, plain sums otherwise), store the
/// assignment and — under pruning — the exact upper bound. This is the
/// post-kernel half of [`process_row_full`], shared with the blocked paths.
///
/// # Safety contract
/// As [`filter_row`]: the caller's task owns row `r`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn apply_full_assign(
    r: usize,
    v: &[f64],
    a: usize,
    da: f64,
    pruning: bool,
    assign: &SharedRows<u32>,
    upper: &SharedRows<f64>,
    accum: &mut LocalAccum,
) -> bool {
    // Safety: task-exclusive row ownership (see doc).
    let cur_a = unsafe { *assign.get(r) };
    let reassigned;
    if pruning {
        // Delta accumulation against the persistent sums.
        if cur_a == u32::MAX {
            accum.add(a, v);
            reassigned = true;
        } else if cur_a as usize != a {
            accum.sub(cur_a as usize, v);
            accum.add(a, v);
            reassigned = true;
        } else {
            reassigned = false;
        }
        unsafe { *upper.get_mut(r) = da };
    } else {
        // Full re-accumulation every iteration.
        accum.add(a, v);
        reassigned = cur_a != a as u32;
    }
    unsafe { *assign.get_mut(r) = a as u32 };
    reassigned
}

#[cfg(test)]
mod tests {
    use super::*;
    use knor_numa::Topology;
    use knor_sched::SchedulerKind;

    /// A trivial in-memory backend over a plain slice, exercising the
    /// driver protocol without any engine machinery.
    struct SliceBackend<'a> {
        data: &'a [f64],
        d: usize,
    }

    impl LloydBackend for SliceBackend<'_> {
        fn compute(&self, w: usize, view: &IterView<'_>, accum: &mut LocalAccum) -> WorkerReport {
            let mut rep = WorkerReport::default();
            // Per-call scratch is fine at test scale.
            let mut scratch = KernelScratch::new(&view.kernel, self.d);
            drain_queue_kernel(w, view, accum, &mut rep, &mut scratch, |r| {
                &self.data[r * self.d..(r + 1) * self.d]
            });
            rep
        }
    }

    fn run(
        data: &[f64],
        n: usize,
        d: usize,
        k: usize,
        pruning: Pruning,
        threads: usize,
    ) -> DriverOutcome {
        run_kernel(data, n, d, k, pruning, threads, KernelKind::Auto)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_kernel(
        data: &[f64],
        n: usize,
        d: usize,
        k: usize,
        pruning: Pruning,
        threads: usize,
        kernel: KernelKind,
    ) -> DriverOutcome {
        run_replicated(data, n, d, k, pruning, threads, kernel, false, Topology::flat(threads))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_replicated(
        data: &[f64],
        n: usize,
        d: usize,
        k: usize,
        pruning: Pruning,
        threads: usize,
        kernel: KernelKind,
        replication: bool,
        topo: Topology,
    ) -> DriverOutcome {
        let placement = Placement::new(&topo, n, threads);
        let queue = TaskQueue::new(SchedulerKind::Static, &placement);
        let cfg = DriverConfig {
            k,
            d,
            n,
            nthreads: threads,
            max_iters: 50,
            tol: 0.0,
            pruning,
            task_size: 16,
            kernel,
            tiles: None,
            row_offset: 0,
            replication,
            trace: None,
        };
        let init =
            Centroids::from_matrix(&knor_matrix::DMatrix::from_vec(data[..k * d].to_vec(), k, d));
        let backend = SliceBackend { data, d };
        run_lloyd(&cfg, init, &placement, &queue, &backend)
    }

    #[test]
    fn driver_clusters_separated_points() {
        // Three tight groups in 1-D.
        let mut data = Vec::new();
        for c in [0.0f64, 10.0, -10.0] {
            for i in 0..20 {
                data.push(c + (i % 5) as f64 * 0.01);
            }
        }
        let n = data.len();
        let out = run(&data, n, 1, 3, Pruning::None, 3);
        assert!(out.converged);
        assert_eq!(out.assignments.len(), n);
        // All members of a block share an assignment.
        for block in 0..3 {
            let first = out.assignments[block * 20];
            assert!(out.assignments[block * 20..(block + 1) * 20].iter().all(|&a| a == first));
        }
    }

    #[test]
    fn pruned_and_unpruned_agree() {
        let mut data = Vec::new();
        for i in 0..240 {
            let c = (i % 4) as f64 * 7.0;
            data.push(c + (i as f64 * 0.37).sin() * 0.4);
            data.push(-c + (i as f64 * 0.11).cos() * 0.4);
        }
        let n = 240;
        let b = run(&data, n, 2, 4, Pruning::None, 2);
        for scheme in [Pruning::Mti, Pruning::Yinyang] {
            let a = run(&data, n, 2, 4, scheme, 2);
            assert_eq!(a.assignments, b.assignments, "{scheme:?}");
            assert_eq!(a.iters.len(), b.iters.len(), "{scheme:?}");
            assert!(a.iters.iter().map(|i| i.prune.clause1_rows).sum::<u64>() > 0, "{scheme:?}");
        }
    }

    #[test]
    fn yinyang_matches_unpruned_across_group_counts() {
        // k = 20 → t = 2 groups; k = 8 → t = 1 (degenerate single group).
        // Both must walk the unpruned trajectory and prune in steady state.
        let mut data = Vec::new();
        for i in 0..600 {
            let c = (i % 20) as f64;
            data.push((c % 5.0) * 11.0 + (i as f64 * 0.37).sin() * 0.4);
            data.push((c / 5.0).floor() * 11.0 + (i as f64 * 0.11).cos() * 0.4);
        }
        let n = 600;
        for k in [20usize, 8] {
            let yy = run(&data, n, 2, k, Pruning::Yinyang, 3);
            let none = run(&data, n, 2, k, Pruning::None, 3);
            assert_eq!(yy.assignments, none.assignments, "k={k}");
            assert_eq!(yy.iters.len(), none.iters.len(), "k={k}");
            let skipped: u64 = yy.iters.iter().map(|i| i.prune.clause1_rows).sum();
            assert!(skipped > 0, "k={k}: global filter never fired");
        }
    }

    #[test]
    fn yinyang_counter_ledger_is_exact() {
        // Steady-state accounting: every candidate distance is pruned by
        // exactly one clause or computed — clause1·k + clause2 + clause3 +
        // dists = n·k, with no double counting and no leaks.
        let mut data = Vec::new();
        for i in 0..500 {
            let c = (i % 25) as f64;
            data.push((c % 5.0) * 9.0 + (i as f64 * 0.29).sin() * 0.9);
            data.push((c / 5.0).floor() * 9.0 + (i as f64 * 0.17).cos() * 0.9);
        }
        let n = 500;
        let k = 25; // t = 2
        for threads in [1usize, 3] {
            let out = run(&data, n, 2, k, Pruning::Yinyang, threads);
            assert!(out.iters.len() > 1, "need steady-state iterations");
            for it in &out.iters[1..] {
                let p = &it.prune;
                let total = p.clause1_rows * k as u64
                    + p.clause2_prunes
                    + p.clause3_prunes
                    + p.dist_computations;
                assert_eq!(total, (n * k) as u64, "iter {} threads {threads}: {p:?}", it.iter);
            }
            // Iteration 0 is the bound-establishing pass: k kernel dists
            // plus k-1 group-bound dists per row.
            assert_eq!(out.iters[0].prune.dist_computations, (n * (2 * k - 1)) as u64);
        }
    }

    #[test]
    fn yinyang_scalar_and_tiled_bitwise_match() {
        let mut data = Vec::new();
        for i in 0..360 {
            let c = (i % 12) as f64 * 6.0;
            data.push(c + (i as f64 * 0.13).sin());
            data.push(-c + (i as f64 * 0.29).cos());
            data.push((i as f64 * 0.07).sin() * 2.0);
        }
        let n = 360;
        let scalar = run_kernel(&data, n, 3, 12, Pruning::Yinyang, 2, KernelKind::Scalar);
        let tiled = run_kernel(&data, n, 3, 12, Pruning::Yinyang, 2, KernelKind::Tiled);
        assert_eq!(scalar.assignments, tiled.assignments);
        assert_eq!(scalar.centroids, tiled.centroids, "yinyang must be kernel-bitwise");
        assert_eq!(scalar.iters.len(), tiled.iters.len());
        for (a, b) in scalar.iters.iter().zip(&tiled.iters) {
            assert_eq!(a.prune, b.prune);
        }
    }

    #[test]
    fn tiled_kernel_bitwise_matches_scalar_driver_run() {
        let mut data = Vec::new();
        for i in 0..300 {
            let c = (i % 5) as f64 * 6.0;
            data.push(c + (i as f64 * 0.13).sin());
            data.push(-c + (i as f64 * 0.29).cos());
            data.push((i as f64 * 0.07).sin() * 2.0);
        }
        let n = 300;
        for pruning in [Pruning::None, Pruning::Mti, Pruning::Yinyang] {
            let scalar = run_kernel(&data, n, 3, 12, pruning, 2, KernelKind::Scalar);
            let tiled = run_kernel(&data, n, 3, 12, pruning, 2, KernelKind::Tiled);
            assert_eq!(scalar.assignments, tiled.assignments, "pruning={pruning:?}");
            assert_eq!(scalar.centroids, tiled.centroids, "pruning={pruning:?}");
            assert_eq!(scalar.iters.len(), tiled.iters.len());
            for (a, b) in scalar.iters.iter().zip(&tiled.iters) {
                assert_eq!(a.reassigned, b.reassigned);
                assert_eq!(a.rows_accessed, b.rows_accessed);
                assert_eq!(a.prune.dist_computations, b.prune.dist_computations);
            }
        }
    }

    #[test]
    fn normtrick_kernel_matches_clustering() {
        let mut data = Vec::new();
        for i in 0..400 {
            let c = (i % 4) as f64 * 9.0;
            data.push(c + (i as f64 * 0.41).sin() * 0.3);
            data.push(c - (i as f64 * 0.17).cos() * 0.3);
        }
        let n = 400;
        let exact = run_kernel(&data, n, 2, 16, Pruning::None, 2, KernelKind::Tiled);
        let norm = run_kernel(&data, n, 2, 16, Pruning::None, 2, KernelKind::NormTrick);
        assert_eq!(exact.assignments, norm.assignments);
        assert_eq!(exact.iters.len(), norm.iters.len());
        for (a, b) in exact.centroids.means.iter().zip(&norm.centroids.means) {
            assert!((a - b).abs() <= 1e-9_f64.max(b.abs() * 1e-9));
        }
    }

    #[test]
    fn parallel_ccdist_recompute_matches_serial_path() {
        // k > MIRROR_MAX_K with several threads exercises the barrier D/E
        // parallel distance-matrix phase; one thread takes the serial path.
        // 72 tight, well-separated blobs in round-robin row order: rows
        // 0..k seed one centroid per blob, so every engine roots instantly
        // and every clause decision has a huge margin — the trajectories
        // are identical across thread counts.
        let k = MIRROR_MAX_K + 8;
        let per_blob = 10;
        let n = k * per_blob;
        let d = 2;
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let blob = i % k;
            let jitter = (i / k) as f64 * 0.004;
            data.push((blob % 9) as f64 * 50.0 + jitter);
            data.push((blob / 9) as f64 * 50.0 - jitter);
        }
        let par = run_kernel(&data, n, d, k, Pruning::Mti, 3, KernelKind::Auto);
        let ser = run_kernel(&data, n, d, k, Pruning::Mti, 1, KernelKind::Auto);
        assert!(par.converged && ser.converged);
        assert_eq!(par.assignments, ser.assignments);
        assert_eq!(par.iters.len(), ser.iters.len());
        for (a, b) in par.iters.iter().zip(&ser.iters) {
            assert_eq!(a.prune.clause1_rows, b.prune.clause1_rows, "iter {}", a.iter);
            assert_eq!(a.reassigned, b.reassigned, "iter {}", a.iter);
        }
        // A missed slice of the parallel triangle fill would zero half_min
        // and kill Clause 1 entirely; rooted blobs must prune every row.
        let last = par.iters.last().unwrap();
        assert_eq!(last.prune.clause1_rows, n as u64, "clause 1 must cover all rooted rows");
    }

    #[test]
    fn replicated_runs_bitwise_match_shared_copy() {
        // Replication must not perturb the trajectory by a single bit, for
        // every kernel family, pruning on/off, and one or several synthetic
        // nodes (including nodes > threads, which leaves slots empty).
        let mut data = Vec::new();
        for i in 0..360 {
            let c = (i % 6) as f64 * 5.0;
            data.push(c + (i as f64 * 0.23).sin() * 0.8);
            data.push(-c + (i as f64 * 0.19).cos() * 0.8);
            data.push((i as f64 * 0.31).sin() * 1.5);
        }
        let n = 360;
        let (d, k) = (3, 12);
        for kernel in [KernelKind::Scalar, KernelKind::Tiled, KernelKind::NormTrick] {
            for pruning in [Pruning::None, Pruning::Mti, Pruning::Yinyang] {
                let base = run_kernel(&data, n, d, k, pruning, 4, kernel);
                for topo in [
                    Topology::flat(4),
                    Topology::synthetic(2, 2),
                    Topology::synthetic(4, 1),
                    Topology::synthetic(6, 1), // more nodes than threads
                ] {
                    let nodes = topo.nodes();
                    let rep = run_replicated(&data, n, d, k, pruning, 4, kernel, true, topo);
                    assert_eq!(
                        base.assignments, rep.assignments,
                        "kernel={kernel:?} pruning={pruning:?} nodes={nodes}"
                    );
                    assert_eq!(base.centroids, rep.centroids);
                    assert_eq!(base.iters.len(), rep.iters.len());
                    for (a, b) in base.iters.iter().zip(&rep.iters) {
                        assert_eq!(a.reassigned, b.reassigned);
                        assert_eq!(a.prune, b.prune);
                    }
                    // Every non-final iteration published one delta per
                    // populated node.
                    let pubs = rep.iters.iter().filter(|i| i.publish_bytes > 0).count();
                    assert_eq!(pubs, rep.iters.len() - 1, "nodes={nodes}");
                    assert!(base.iters.iter().all(|i| i.publish_bytes == 0));
                }
            }
        }
    }

    #[test]
    fn replicated_parallel_ccdist_matches() {
        // Replication composed with the barrier D/E parallel distance-matrix
        // phase (k > MIRROR_MAX_K): barrier P must also cover the
        // finalize_half_min write.
        let k = MIRROR_MAX_K + 8;
        let per_blob = 10;
        let n = k * per_blob;
        let d = 2;
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let blob = i % k;
            let jitter = (i / k) as f64 * 0.004;
            data.push((blob % 9) as f64 * 50.0 + jitter);
            data.push((blob / 9) as f64 * 50.0 - jitter);
        }
        let base = run_kernel(&data, n, d, k, Pruning::Mti, 3, KernelKind::Auto);
        let rep = run_replicated(
            &data,
            n,
            d,
            k,
            Pruning::Mti,
            3,
            KernelKind::Auto,
            true,
            Topology::synthetic(3, 1),
        );
        assert_eq!(base.assignments, rep.assignments);
        assert_eq!(base.centroids, rep.centroids);
        assert_eq!(base.iters.len(), rep.iters.len());
        for (a, b) in base.iters.iter().zip(&rep.iters) {
            assert_eq!(a.prune.clause1_rows, b.prune.clause1_rows, "iter {}", a.iter);
        }
    }

    #[test]
    fn reduce_hook_sees_every_iteration() {
        use std::sync::atomic::AtomicUsize;

        struct Counting<'a> {
            inner: SliceBackend<'a>,
            calls: AtomicUsize,
        }
        impl LloydBackend for Counting<'_> {
            fn compute(
                &self,
                w: usize,
                view: &IterView<'_>,
                accum: &mut LocalAccum,
            ) -> WorkerReport {
                self.inner.compute(w, view, accum)
            }
            fn reduce(
                &self,
                _iter: usize,
                _sums: &mut [f64],
                _counts: &mut [i64],
                _weights: &mut [f64],
                _totals: &mut WorkerReport,
            ) -> ReduceReport {
                self.calls.fetch_add(1, Ordering::Relaxed);
                ReduceReport { comm_bytes: 7, ..Default::default() }
            }
        }

        let data: Vec<f64> = (0..60).map(|i| (i % 3) as f64 * 5.0).collect();
        let topo = Topology::flat(2);
        let placement = Placement::new(&topo, 60, 2);
        let queue = TaskQueue::new(SchedulerKind::Static, &placement);
        let cfg = DriverConfig {
            k: 3,
            d: 1,
            n: 60,
            nthreads: 2,
            max_iters: 20,
            tol: 0.0,
            pruning: Pruning::Mti,
            task_size: 8,
            kernel: KernelKind::Auto,
            tiles: None,
            row_offset: 0,
            replication: false,
            trace: None,
        };
        let init =
            Centroids::from_matrix(&knor_matrix::DMatrix::from_vec(vec![0.0, 5.0, 10.0], 3, 1));
        let backend =
            Counting { inner: SliceBackend { data: &data, d: 1 }, calls: AtomicUsize::new(0) };
        let out = run_lloyd(&cfg, init, &placement, &queue, &backend);
        assert_eq!(backend.calls.load(Ordering::Relaxed), out.iters.len());
        assert_eq!(out.reduces.len(), out.iters.len());
        assert!(out.reduces.iter().all(|r| r.comm_bytes == 7));
    }
}
