//! The shared ||Lloyd's iteration driver.
//!
//! All three knor engines — knori (in-memory), knors (semi-external-memory)
//! and knord (distributed) — run the *same* iteration protocol; only the
//! row-access path differs (NUMA arenas, the SAFS row-cache stack, or a
//! per-rank slice of the matrix). clusterNOR's observation is that the
//! protocol itself is the reusable asset, so it lives here once and each
//! engine plugs in a [`LloydBackend`]:
//!
//! ```text
//! pre_iteration (coordinator)
//!   A ─ compute super-phase (backend) ─ B ─ parallel merge ─ C ─
//!       [reduce (backend: knord's allreduce window)]
//!       coordinator window: finalize means, drift, MTI update,
//!       convergence, stats, end_iteration (backend), queue refill ─ A
//! ```
//!
//! * **compute** — each worker drains the task queue and fills its private
//!   [`LocalAccum`]; the backend decides how a row's bytes are obtained.
//!   The helpers [`filter_row`], [`process_row_mti`] and
//!   [`process_row_full`] implement the per-row MTI/full-scan state machine
//!   so backends share that logic too.
//! * **merge** — the `k·d` accumulator dimensions are sliced across
//!   workers; each worker sums one slice across all `T` accumulators.
//! * **reduce** — a hook between the local merge and the centroid update.
//!   Single-machine engines leave it as the identity; knord allreduces the
//!   merged sums/counts (and the convergence scalars) across ranks here, so
//!   every rank finalizes identical centroids — the paper's decentralized
//!   §3.3 design.
//! * **coordinator window** — worker 0 finalizes means, drifts and the MTI
//!   distance matrix, records statistics, decides convergence and refills
//!   the queue.
//!
//! Under MTI the accumulators hold *deltas* against persistent global sums
//! (maintained by the driver), so a Clause-1 skip touches no row data.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use knor_matrix::shared::SharedRows;
use knor_numa::{AccessTally, Placement};
use knor_sched::TaskQueue;

use crate::centroids::{finalize_means, Centroids, LocalAccum};
use crate::distance::{dist, nearest};
use crate::pruning::{mti_assign, MtiIterState, PruneCounters};
use crate::stats::IterStats;
use crate::sync::ExclusiveCell;

/// Backend-independent parameters of a driver run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of clusters.
    pub k: usize,
    /// Dimensionality.
    pub d: usize,
    /// Rows this engine instance owns (a rank's slice for knord).
    pub n: usize,
    /// Worker threads.
    pub nthreads: usize,
    /// Iteration cap (counting the initial assignment pass).
    pub max_iters: usize,
    /// Drift tolerance (0.0 = reassignment-only convergence).
    pub tol: f64,
    /// MTI pruning on/off.
    pub pruning: bool,
    /// Rows per scheduler task.
    pub task_size: usize,
}

/// What one worker reports after its compute super-phase.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Pruning outcome counters.
    pub counters: PruneCounters,
    /// Assignments changed by this worker.
    pub reassigned: u64,
    /// Rows whose data was actually touched.
    pub rows_accessed: u64,
    /// Exact access tally, when the backend tracks them (knori cost model).
    pub tally: Option<AccessTally>,
    /// Backend-defined auxiliary counter (knors: row-cache hits).
    pub aux: u64,
}

impl WorkerReport {
    /// Fold another worker's report into this aggregate (tallies collect
    /// into a vector at the call site, not here).
    fn absorb(&mut self, o: &WorkerReport) {
        self.counters.merge(&o.counters);
        self.reassigned += o.reassigned;
        self.rows_accessed += o.rows_accessed;
        self.aux += o.aux;
    }
}

/// Read-only view of the iteration state handed to [`LloydBackend::compute`].
pub struct IterView<'a> {
    /// Current iteration, 0-based.
    pub iter: usize,
    /// Whether MTI pruning is active.
    pub pruning: bool,
    /// Current centroids (`C^t`).
    pub cents: &'a Centroids,
    /// MTI drift/threshold state for this iteration.
    pub mti: &'a MtiIterState,
    /// Per-row assignments (disjoint task ownership).
    pub assign: &'a SharedRows<u32>,
    /// Per-row MTI upper bounds.
    pub upper: &'a SharedRows<f64>,
    /// The iteration's task queue.
    pub queue: &'a TaskQueue,
}

/// What a [`LloydBackend::reduce`] implementation reports about the global
/// reduction it performed (all zeros for single-machine engines).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReduceReport {
    /// Wire bytes this process sent during the reduction.
    pub comm_bytes: u64,
    /// Maximum wire bytes any rank sent during the reduction.
    pub max_rank_comm_bytes: u64,
    /// Modeled wire time of the reduction on the reference cluster.
    pub modeled_comm_ns: f64,
}

/// The per-engine plug-in: how rows are fetched and what happens at the
/// engine-specific protocol points.
pub trait LloydBackend: Sync {
    /// Called once per worker thread before the first iteration
    /// (knori binds the thread to its NUMA node here).
    fn worker_start(&self, _w: usize) {}

    /// Coordinator-only hook before barrier A of each iteration
    /// (knors decides row-cache refreshes here).
    fn pre_iteration(&self, _iter: usize) {}

    /// The compute super-phase for worker `w`: drain `view.queue`, fetch
    /// row data however this engine does, and update `accum` plus the
    /// shared per-row state via the driver's row helpers.
    fn compute(&self, w: usize, view: &IterView<'_>, accum: &mut LocalAccum) -> WorkerReport;

    /// Coordinator hook between the local merge and the centroid update.
    /// knord allreduces `sums`, `counts` and the scalar totals in `totals`
    /// across ranks here; the defaults leave everything local.
    fn reduce(
        &self,
        _iter: usize,
        _sums: &mut [f64],
        _counts: &mut [i64],
        _totals: &mut WorkerReport,
    ) -> ReduceReport {
        ReduceReport::default()
    }

    /// Coordinator hook after the iteration's statistics are final
    /// (knors records its I/O statistics here). `aux_total` is the sum of
    /// the workers' backend-defined [`WorkerReport::aux`] counters.
    fn end_iteration(&self, _iter: usize, _stats: &IterStats, _aux_total: u64) {}
}

/// Everything a finished driver run hands back to the engine.
#[derive(Debug)]
pub struct DriverOutcome {
    /// Final centroids.
    pub centroids: Centroids,
    /// Final per-row assignments.
    pub assignments: Vec<u32>,
    /// Per-iteration statistics.
    pub iters: Vec<IterStats>,
    /// Per-iteration reduction reports (meaningful for knord).
    pub reduces: Vec<ReduceReport>,
    /// Whether the run converged before the iteration cap.
    pub converged: bool,
}

/// Run the full ||Lloyd's protocol: spawn `cfg.nthreads` workers, iterate
/// until convergence or the cap, and return the outcome.
///
/// `queue` must be empty; the driver fills it from `placement` each
/// iteration. `init` supplies the starting centroids.
pub fn run_lloyd<B: LloydBackend>(
    cfg: &DriverConfig,
    init: Centroids,
    placement: &Placement,
    queue: &TaskQueue,
    backend: &B,
) -> DriverOutcome {
    let (k, d, n, nthreads) = (cfg.k, cfg.d, cfg.n, cfg.nthreads);
    assert_eq!(init.k(), k, "init centroid count mismatch");
    assert_eq!(init.d, d, "init dimensionality mismatch");
    assert_eq!(placement.nthreads(), nthreads);
    assert_eq!(placement.nrow(), n);

    // Shared engine state (see module docs for the barrier protocol).
    let centroids = ExclusiveCell::new(init);
    let next_cents = ExclusiveCell::new(Centroids::zeros(k, d));
    let mti = ExclusiveCell::new(MtiIterState::new(k));
    let assign: SharedRows<u32> = SharedRows::new(n, u32::MAX);
    let upper: SharedRows<f64> = SharedRows::new(n, f64::INFINITY);
    let merged_sums: SharedRows<f64> = SharedRows::new(k * d, 0.0);
    let merged_counts = ExclusiveCell::new(vec![0i64; k]);
    // Persistent global sums/counts for MTI delta accumulation.
    let persistent = ExclusiveCell::new((vec![0.0f64; k * d], vec![0i64; k]));
    let accums: Vec<ExclusiveCell<LocalAccum>> =
        (0..nthreads).map(|_| ExclusiveCell::new(LocalAccum::new(k, d))).collect();
    let reports: Vec<ExclusiveCell<WorkerReport>> =
        (0..nthreads).map(|_| ExclusiveCell::new(WorkerReport::default())).collect();
    let stop = AtomicBool::new(false);
    let converged = AtomicBool::new(false);
    let barrier = Barrier::new(nthreads);
    let dim_slices = knor_matrix::partition_rows(k * d, nthreads);

    queue.refill(placement, cfg.task_size);

    let mut iter_stats: Vec<IterStats> = Vec::new();
    let mut reduce_reports: Vec<ReduceReport> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(nthreads);
        for w in 0..nthreads {
            let centroids = &centroids;
            let next_cents = &next_cents;
            let mti = &mti;
            let assign = &assign;
            let upper = &upper;
            let merged_sums = &merged_sums;
            let merged_counts = &merged_counts;
            let persistent = &persistent;
            let accums = &accums;
            let reports = &reports;
            let stop = &stop;
            let converged = &converged;
            let barrier = &barrier;
            let backend = &backend;
            let dim_slice = dim_slices[w].clone();
            handles.push(s.spawn(move || {
                backend.worker_start(w);
                let pruning = cfg.pruning;
                let mut stats: Vec<IterStats> = Vec::new();
                let mut reduces: Vec<ReduceReport> = Vec::new();
                let mut iter = 0usize;

                loop {
                    if w == 0 {
                        backend.pre_iteration(iter);
                    }
                    barrier.wait(); // A — state published by coordinator
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let t0 = std::time::Instant::now();

                    // ---- compute super-phase (backend-specific) ----------
                    // Safety: barrier A separates us from the coordinator's
                    // writes; nobody writes these cells during compute.
                    let view = IterView {
                        iter,
                        pruning,
                        cents: unsafe { centroids.get() },
                        mti: unsafe { mti.get() },
                        assign,
                        upper,
                        queue,
                    };
                    let accum = unsafe { accums[w].get_mut() };
                    let report = backend.compute(w, &view, accum);
                    // Safety: own slot; read by worker 0 only after B.
                    unsafe { *reports[w].get_mut() = report };

                    barrier.wait(); // B — all accumulators and reports final

                    // ---- parallel merge (dimension-sliced) ---------------
                    for j in dim_slice.clone() {
                        let mut sum = 0.0;
                        for a in accums.iter() {
                            // Safety: accumulators are read-only between B and C.
                            sum += unsafe { a.get() }.sums[j];
                        }
                        // Safety: dim slices are disjoint across workers.
                        unsafe { *merged_sums.get_mut(j) = sum };
                    }
                    if w == 0 {
                        // Safety: coordinator-only write between B and C.
                        let mc = unsafe { merged_counts.get_mut() };
                        for (c, m) in mc.iter_mut().enumerate() {
                            *m = accums.iter().map(|a| unsafe { a.get() }.counts[c]).sum();
                        }
                    }

                    barrier.wait(); // C — merged sums/counts complete

                    if w == 0 {
                        // ---- coordinator window --------------------------
                        // Safety: exclusive window between C and next A.
                        let cents = unsafe { centroids.get_mut() };
                        let next = unsafe { next_cents.get_mut() };
                        let mc = unsafe { merged_counts.get_mut() };
                        let (psums, pcounts) = unsafe { persistent.get_mut() };

                        // Aggregate worker reports before the reduce so the
                        // backend can globalize the convergence scalars.
                        let mut totals = WorkerReport::default();
                        let mut tallies: Option<Vec<AccessTally>> = None;
                        for rep in reports.iter() {
                            // Safety: workers finished their reports before B.
                            let rep = unsafe { rep.get() };
                            totals.absorb(rep);
                            if let Some(t) = rep.tally.as_ref() {
                                tallies.get_or_insert_with(Vec::new).push(t.clone());
                            }
                        }

                        // Engine-specific global reduction (knord's
                        // allreduce); identity for single-machine engines.
                        let mut sums_view: Vec<f64> =
                            (0..k * d).map(|j| unsafe { *merged_sums.get(j) }).collect();
                        let reduce_report = backend.reduce(iter, &mut sums_view, mc, &mut totals);

                        if pruning {
                            for (p, s) in psums.iter_mut().zip(&sums_view) {
                                *p += s;
                            }
                            for (p, c) in pcounts.iter_mut().zip(mc.iter()) {
                                *p += c;
                            }
                            finalize_means(psums, pcounts, cents, next);
                        } else {
                            finalize_means(&sums_view, mc, cents, next);
                        }

                        let max_drift = (0..k)
                            .map(|c| dist(cents.mean(c), next.mean(c)))
                            .fold(0.0f64, f64::max);
                        if pruning {
                            // Safety: coordinator window.
                            unsafe { mti.get_mut() }.update(cents, next);
                        }
                        std::mem::swap(cents, next);

                        stats.push(IterStats {
                            iter,
                            reassigned: totals.reassigned,
                            rows_accessed: totals.rows_accessed,
                            prune: totals.counters,
                            wall_ns: t0.elapsed().as_nanos() as u64,
                            queue: queue.stats(),
                            tallies,
                            max_drift,
                        });
                        reduces.push(reduce_report);
                        backend.end_iteration(iter, stats.last().expect("just pushed"), totals.aux);
                        queue.reset_stats();

                        let done_iters = iter + 1;
                        let is_converged =
                            totals.reassigned == 0 || (cfg.tol > 0.0 && max_drift <= cfg.tol);
                        if is_converged {
                            converged.store(true, Ordering::Release);
                        }
                        if is_converged || done_iters >= cfg.max_iters {
                            stop.store(true, Ordering::Release);
                        } else {
                            queue.refill(placement, cfg.task_size);
                        }
                    }

                    // Reset own accumulator for the next iteration.
                    accum.reset();
                    iter += 1;
                }

                (stats, reduces)
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            let (stats, reduces) = h.join().expect("engine worker panicked");
            if w == 0 {
                iter_stats = stats;
                reduce_reports = reduces;
            }
        }
    });

    DriverOutcome {
        centroids: centroids.into_inner(),
        assignments: assign.snapshot(),
        iters: iter_stats,
        reduces: reduce_reports,
        converged: converged.load(Ordering::Acquire),
    }
}

// ---------------------------------------------------------------------------
// Shared per-row state machine
// ---------------------------------------------------------------------------

/// Drain worker `w`'s share of the task queue, dispatching every row
/// through the shared MTI/full-scan state machine. `fetch` supplies a
/// row's data (and may record backend bookkeeping like access tallies);
/// it is only called for rows that survive the Clause-1 filter.
///
/// Backends with per-row data access (knori, knord) build their whole
/// compute super-phase from this; knors cannot, because it filters whole
/// tasks ahead of batched I/O, but it shares the per-row helpers below.
pub fn drain_queue<'data, F>(
    w: usize,
    view: &IterView<'_>,
    accum: &mut LocalAccum,
    rep: &mut WorkerReport,
    mut fetch: F,
) where
    F: FnMut(usize) -> &'data [f64],
{
    while let Some(task) = view.queue.next(w) {
        for r in task.rows {
            if view.iter > 0 && view.pruning {
                // Clause 1: decided before touching row data.
                if !filter_row(r, view.assign, view.upper, view.mti, &mut rep.counters) {
                    continue;
                }
                let v = fetch(r);
                rep.rows_accessed += 1;
                rep.reassigned += u64::from(process_row_mti(
                    r,
                    v,
                    view.cents,
                    view.mti,
                    view.assign,
                    view.upper,
                    accum,
                    &mut rep.counters,
                ));
            } else {
                // Full scan: first iteration, or pruning disabled.
                let v = fetch(r);
                rep.rows_accessed += 1;
                rep.reassigned += u64::from(process_row_full(
                    r,
                    v,
                    view.cents,
                    view.pruning,
                    view.assign,
                    view.upper,
                    accum,
                    &mut rep.counters,
                ));
            }
        }
    }
}

/// Clause-1 filter for one row of a task (`iter > 0`, pruning on).
///
/// Loosens the row's upper bound by its centroid's drift and writes it
/// back. Returns `true` when the row's data must be fetched (Clause 1 did
/// not fire).
///
/// # Safety contract
/// The caller's task must own row `r` for this iteration (the scheduler
/// hands each row to exactly one task).
#[inline]
pub fn filter_row(
    r: usize,
    assign: &SharedRows<u32>,
    upper: &SharedRows<f64>,
    mti: &MtiIterState,
    counters: &mut PruneCounters,
) -> bool {
    // Safety: task-exclusive row ownership (see doc).
    let a = unsafe { *assign.get(r) } as usize;
    let ub = unsafe { *upper.get(r) } + mti.drift[a];
    unsafe { *upper.get_mut(r) = ub };
    if ub <= mti.half_min[a] {
        counters.clause1_rows += 1;
        false
    } else {
        true
    }
}

/// Process a fetched row under MTI (`iter > 0`): the row's upper bound has
/// already been drift-loosened by [`filter_row`]. Returns `true` when the
/// assignment changed. Accumulates *deltas* into `accum`.
///
/// # Safety contract
/// As [`filter_row`]: the caller's task owns row `r`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn process_row_mti(
    r: usize,
    v: &[f64],
    cents: &Centroids,
    mti: &MtiIterState,
    assign: &SharedRows<u32>,
    upper: &SharedRows<f64>,
    accum: &mut LocalAccum,
    counters: &mut PruneCounters,
) -> bool {
    // Safety: task-exclusive row ownership (see doc).
    let a = unsafe { *assign.get(r) } as usize;
    let ub = unsafe { *upper.get(r) };
    let (new_a, new_ub) = mti_assign(v, cents, mti, a, ub, counters);
    let reassigned = new_a != a;
    if reassigned {
        accum.sub(a, v);
        accum.add(new_a, v);
        unsafe { *assign.get_mut(r) = new_a as u32 };
    }
    unsafe { *upper.get_mut(r) = new_ub };
    reassigned
}

/// Process a row with a full `k`-way scan (iteration 0, or pruning off).
/// With pruning on this is the delta-establishing first pass; without, the
/// accumulator collects plain full sums. Returns `true` on reassignment.
///
/// # Safety contract
/// As [`filter_row`]: the caller's task owns row `r`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn process_row_full(
    r: usize,
    v: &[f64],
    cents: &Centroids,
    pruning: bool,
    assign: &SharedRows<u32>,
    upper: &SharedRows<f64>,
    accum: &mut LocalAccum,
    counters: &mut PruneCounters,
) -> bool {
    let k = cents.k();
    // Safety: task-exclusive row ownership (see doc).
    let cur_a = unsafe { *assign.get(r) };
    let (a, da) = nearest(v, &cents.means, k);
    counters.dist_computations += k as u64;
    let reassigned;
    if pruning {
        // Delta accumulation against the persistent sums.
        if cur_a == u32::MAX {
            accum.add(a, v);
            reassigned = true;
        } else if cur_a as usize != a {
            accum.sub(cur_a as usize, v);
            accum.add(a, v);
            reassigned = true;
        } else {
            reassigned = false;
        }
        unsafe { *upper.get_mut(r) = da };
    } else {
        // Full re-accumulation every iteration.
        accum.add(a, v);
        reassigned = cur_a != a as u32;
    }
    unsafe { *assign.get_mut(r) = a as u32 };
    reassigned
}

#[cfg(test)]
mod tests {
    use super::*;
    use knor_numa::Topology;
    use knor_sched::SchedulerKind;

    /// A trivial in-memory backend over a plain slice, exercising the
    /// driver protocol without any engine machinery.
    struct SliceBackend<'a> {
        data: &'a [f64],
        d: usize,
    }

    impl LloydBackend for SliceBackend<'_> {
        fn compute(&self, w: usize, view: &IterView<'_>, accum: &mut LocalAccum) -> WorkerReport {
            let mut rep = WorkerReport::default();
            drain_queue(w, view, accum, &mut rep, |r| &self.data[r * self.d..(r + 1) * self.d]);
            rep
        }
    }

    fn run(
        data: &[f64],
        n: usize,
        d: usize,
        k: usize,
        pruning: bool,
        threads: usize,
    ) -> DriverOutcome {
        let topo = Topology::flat(threads);
        let placement = Placement::new(&topo, n, threads);
        let queue = TaskQueue::new(SchedulerKind::Static, &placement);
        let cfg = DriverConfig {
            k,
            d,
            n,
            nthreads: threads,
            max_iters: 50,
            tol: 0.0,
            pruning,
            task_size: 16,
        };
        let init =
            Centroids::from_matrix(&knor_matrix::DMatrix::from_vec(data[..k * d].to_vec(), k, d));
        let backend = SliceBackend { data, d };
        run_lloyd(&cfg, init, &placement, &queue, &backend)
    }

    #[test]
    fn driver_clusters_separated_points() {
        // Three tight groups in 1-D.
        let mut data = Vec::new();
        for c in [0.0f64, 10.0, -10.0] {
            for i in 0..20 {
                data.push(c + (i % 5) as f64 * 0.01);
            }
        }
        let n = data.len();
        let out = run(&data, n, 1, 3, false, 3);
        assert!(out.converged);
        assert_eq!(out.assignments.len(), n);
        // All members of a block share an assignment.
        for block in 0..3 {
            let first = out.assignments[block * 20];
            assert!(out.assignments[block * 20..(block + 1) * 20].iter().all(|&a| a == first));
        }
    }

    #[test]
    fn pruned_and_unpruned_agree() {
        let mut data = Vec::new();
        for i in 0..240 {
            let c = (i % 4) as f64 * 7.0;
            data.push(c + (i as f64 * 0.37).sin() * 0.4);
            data.push(-c + (i as f64 * 0.11).cos() * 0.4);
        }
        let n = 240;
        let a = run(&data, n, 2, 4, true, 2);
        let b = run(&data, n, 2, 4, false, 2);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.iters.len(), b.iters.len());
        assert!(a.iters.iter().map(|i| i.prune.clause1_rows).sum::<u64>() > 0);
    }

    #[test]
    fn reduce_hook_sees_every_iteration() {
        use std::sync::atomic::AtomicUsize;

        struct Counting<'a> {
            inner: SliceBackend<'a>,
            calls: AtomicUsize,
        }
        impl LloydBackend for Counting<'_> {
            fn compute(
                &self,
                w: usize,
                view: &IterView<'_>,
                accum: &mut LocalAccum,
            ) -> WorkerReport {
                self.inner.compute(w, view, accum)
            }
            fn reduce(
                &self,
                _iter: usize,
                _sums: &mut [f64],
                _counts: &mut [i64],
                _totals: &mut WorkerReport,
            ) -> ReduceReport {
                self.calls.fetch_add(1, Ordering::Relaxed);
                ReduceReport { comm_bytes: 7, ..Default::default() }
            }
        }

        let data: Vec<f64> = (0..60).map(|i| (i % 3) as f64 * 5.0).collect();
        let topo = Topology::flat(2);
        let placement = Placement::new(&topo, 60, 2);
        let queue = TaskQueue::new(SchedulerKind::Static, &placement);
        let cfg = DriverConfig {
            k: 3,
            d: 1,
            n: 60,
            nthreads: 2,
            max_iters: 20,
            tol: 0.0,
            pruning: true,
            task_size: 8,
        };
        let init =
            Centroids::from_matrix(&knor_matrix::DMatrix::from_vec(vec![0.0, 5.0, 10.0], 3, 1));
        let backend =
            Counting { inner: SliceBackend { data: &data, d: 1 }, calls: AtomicUsize::new(0) };
        let out = run_lloyd(&cfg, init, &placement, &queue, &backend);
        assert_eq!(backend.calls.load(Ordering::Relaxed), out.iters.len());
        assert_eq!(out.reduces.len(), out.iters.len());
        assert!(out.reduces.iter().all(|r| r.comm_bytes == 7));
    }
}
