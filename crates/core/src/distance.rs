//! Euclidean distance kernels.
//!
//! These are the innermost loops of every knor module. The squared-distance
//! kernel is written over `chunks_exact(4)` so LLVM vectorizes it without
//! `unsafe`; callers that need true distances take one `sqrt` at the end
//! (MTI bound arithmetic is performed on *distances*, not squares, exactly
//! as in Elkan's formulation).

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn sqdist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    let mut acc = [0.0f64; 4];
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        for i in 0..4 {
            let d = ca[i] - cb[i];
            acc[i] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Euclidean distance.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sqdist(a, b).sqrt()
}

/// Index and distance of the nearest row of `centroids` (`k x d`,
/// row-major) to `v`, scanning all `k` candidates.
///
/// Ties break toward the lower index, matching the serial reference so the
/// pruned and unpruned paths produce identical assignments.
#[inline]
pub fn nearest(v: &[f64], centroids: &[f64], k: usize) -> (usize, f64) {
    let d = v.len();
    let mut best = 0usize;
    let mut best_sq = f64::INFINITY;
    for (c, row) in centroids.chunks_exact(d).enumerate().take(k) {
        let s = sqdist(v, row);
        if s < best_sq {
            best_sq = s;
            best = c;
        }
    }
    (best, best_sq.sqrt())
}

/// Above this `k`, [`centroid_distances`] stops mirroring the lower
/// triangle: readers use `out[min(i,j)*k + max(i,j)]` instead, halving the
/// `O(k²)` store traffic the recompute pays every iteration.
pub const MIRROR_MAX_K: usize = 64;

/// Fill `out[i*k + j]` (`j > i`) with `d(centroid_i, centroid_j)` and
/// `half_min[i] = ½·min_{j≠i} d(c_i, c_j)` — the `O(k²)` structure MTI
/// maintains each iteration. `out` is a full `k x k` buffer; the strict
/// upper triangle is always computed, and for `k <= `[`MIRROR_MAX_K`] it is
/// also mirrored into the lower triangle for O(1) unordered lookup. Larger
/// `k` must look up `out[min(i,j)*k + max(i,j)]` (as
/// [`crate::pruning::MtiIterState::half_cc`] does), saving half the stores.
pub fn centroid_distances(
    centroids: &[f64],
    k: usize,
    d: usize,
    out: &mut [f64],
    half_min: &mut [f64],
) {
    debug_assert_eq!(centroids.len(), k * d);
    debug_assert_eq!(out.len(), k * k);
    debug_assert_eq!(half_min.len(), k);
    let mirror = k <= MIRROR_MAX_K;
    for x in half_min.iter_mut() {
        *x = f64::INFINITY;
    }
    for i in 0..k {
        out[i * k + i] = 0.0;
        for j in (i + 1)..k {
            let dij = dist(&centroids[i * d..(i + 1) * d], &centroids[j * d..(j + 1) * d]);
            out[i * k + j] = dij;
            if mirror {
                out[j * k + i] = dij;
            }
            if dij < half_min[i] {
                half_min[i] = dij;
            }
            if dij < half_min[j] {
                half_min[j] = dij;
            }
        }
    }
    for x in half_min.iter_mut() {
        *x *= 0.5;
        if !x.is_finite() {
            // k == 1: no other centroid, Clause 1 can never fire.
            *x = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqdist_matches_naive() {
        let a: Vec<f64> = (0..13).map(|x| x as f64 * 0.3).collect();
        let b: Vec<f64> = (0..13).map(|x| (x as f64).sin()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((sqdist(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn dist_zero_on_self() {
        let a = [1.0, -2.0, 3.5];
        assert_eq!(dist(&a, &a), 0.0);
    }

    #[test]
    fn nearest_picks_minimum_with_low_index_ties() {
        let cents = [0.0, 0.0, 5.0, 0.0, 0.0, 0.0]; // c0 == c2
        let (idx, d) = nearest(&[0.1, 0.0], &cents, 3);
        assert_eq!(idx, 0, "tie must break to lower index");
        assert!((d - 0.1).abs() < 1e-12);
    }

    #[test]
    fn centroid_distance_matrix_symmetric_and_halved() {
        let cents = [0.0, 0.0, 3.0, 4.0, 0.0, 8.0]; // pairwise: 5, 8, 5
        let mut out = vec![0.0; 9];
        let mut half = vec![0.0; 3];
        centroid_distances(&cents, 3, 2, &mut out, &mut half);
        assert!((out[1] - 5.0).abs() < 1e-12);
        assert!((out[3] - 5.0).abs() < 1e-12);
        assert!((out[2] - 8.0).abs() < 1e-12);
        assert!((out[5] - 5.0).abs() < 1e-12);
        assert_eq!(half, vec![2.5, 2.5, 2.5]);
    }

    #[test]
    fn large_k_skips_mirror_but_triangle_is_complete() {
        let k = MIRROR_MAX_K + 6;
        let d = 3;
        let cents: Vec<f64> = (0..k * d).map(|x| ((x * 37) % 101) as f64 * 0.13).collect();
        let mut out = vec![f64::NAN; k * k];
        let mut half = vec![0.0; k];
        centroid_distances(&cents, k, d, &mut out, &mut half);
        for i in 0..k {
            assert_eq!(out[i * k + i], 0.0);
            for j in (i + 1)..k {
                let want = dist(&cents[i * d..(i + 1) * d], &cents[j * d..(j + 1) * d]);
                assert_eq!(out[i * k + j], want, "upper triangle ({i},{j})");
                assert!(out[j * k + i].is_nan(), "lower triangle ({j},{i}) must be untouched");
            }
        }
        // half_min still sees every pair despite the skipped mirror.
        for i in 0..k {
            let min: f64 = (0..k)
                .filter(|&j| j != i)
                .map(|j| out[i.min(j) * k + i.max(j)])
                .fold(f64::INFINITY, f64::min);
            assert_eq!(half[i], 0.5 * min, "half_min[{i}]");
        }
    }

    #[test]
    fn single_centroid_half_min_is_zero() {
        let mut out = vec![0.0; 1];
        let mut half = vec![9.9; 1];
        centroid_distances(&[1.0, 2.0], 1, 2, &mut out, &mut half);
        assert_eq!(half[0], 0.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        // d(a,c) <= d(a,b) + d(b,c) on random-ish data.
        let a = [0.3, 1.0, -2.0, 4.4, 0.0];
        let b = [1.3, -1.0, 2.0, 0.4, 2.0];
        let c = [-0.3, 0.0, 1.0, 2.4, 1.0];
        assert!(dist(&a, &c) <= dist(&a, &b) + dist(&b, &c) + 1e-12);
    }
}
