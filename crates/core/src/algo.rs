//! The pluggable clustering-algorithm layer (clusterNOR's MM interface).
//!
//! knor's durable asset is not Lloyd's loop but the machinery around it:
//! the NUMA-aware parallel driver, MTI pruning, the blocked assignment
//! kernels, the SEM row cache and knord's allreduce. The clusterNOR
//! follow-on observes that this infrastructure generalizes to a family of
//! clustering algorithms through a two-phase **map/update** interface:
//!
//! * **map** — a per-row phase that picks a cluster and a contribution
//!   weight from the current model (`C^t`);
//! * **update** — a per-cluster phase that folds the merged accumulators
//!   (weighted sums, counts, weights) into the next model (`C^{t+1}`).
//!
//! [`MmAlgorithm`] captures those two phases plus the hooks the engines
//! need to stay fast and correct for every member of the family:
//! pruning eligibility (MTI is only sound for exact-Euclidean, hard
//! assignment, mean updates — i.e. Lloyd's), per-iteration row
//! subsampling (mini-batch rides the same no-touch path as a Clause-1
//! skip, so knors skips the I/O too), a blocked `map` so algorithms can
//! reuse the kernel layer's micro-kernels, and the convergence decision.
//!
//! Plain Lloyd's k-means is the canonical instance: the driver routes it
//! through the exact pre-existing code paths, so its output is **bitwise
//! identical** to the pre-trait engine. Three further instances exercise
//! different corners of the interface:
//!
//! | Algorithm | map | update | pruning | extra |
//! |-----------|-----|--------|---------|-------|
//! | [`Algorithm::Lloyd`] | nearest (Euclid) | mean | MTI | — |
//! | [`Algorithm::Spherical`] | max cosine (dot kernel) | renormalized direction | off | unit-norm init |
//! | [`Algorithm::Fuzzy`] | nearest + fuzzy membership weight | weighted mean (`Σwx/Σw`) | off | weights lane in the allreduce |
//! | [`Algorithm::MiniBatch`] | nearest on a sampled subset | learning-rate merge | off | subsample filter before fetch/I-O |

use std::sync::Mutex;

use crate::centroids::{finalize_means, Centroids};
use crate::distance::{nearest, sqdist};
use crate::kernel::{assign_rows, dot, sqnorm, KernelKind};

/// The algorithm knob carried by `KmeansConfig`/`SemConfig`/`DistConfig`.
///
/// Resolve to a runnable [`MmAlgorithm`] with [`Algorithm::resolve`].
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// Plain Lloyd's k-means (the paper's knori/knors/knord). The only
    /// member for which MTI pruning is sound.
    Lloyd,
    /// Spherical k-means: assignment by maximum cosine similarity,
    /// centroid update renormalizes the summed direction. Rows contribute
    /// their unit-normalized direction (`x/‖x‖`), so raw data need not be
    /// pre-normalized.
    Spherical,
    /// Weighted k-means with fuzzy-c-means-style membership weights: a row
    /// is hard-assigned to its nearest centroid but contributes with weight
    /// `u = 1 / Σ_c (s_best/s_c)^{1/(m−1)} ∈ (0, 1]` (its FCM membership of
    /// the winning cluster, `s` = squared distances); the update divides by
    /// accumulated *weights*, not counts.
    Fuzzy {
        /// The fuzzifier `m > 1` (2.0 is the usual choice; larger is
        /// fuzzier, i.e. boundary points count for less).
        m: f64,
    },
    /// Sculley-style mini-batch k-means on the driver: iteration 0 is a
    /// full assignment pass, every later iteration Bernoulli-samples
    /// ≈`batch` of the `n` rows (by a seeded hash of the *global* row id,
    /// so every engine — and every knord rank — samples identically) and
    /// applies a per-center learning-rate merge with cumulative counts.
    /// Runs for the full iteration cap unless a drift tolerance is set.
    MiniBatch {
        /// Expected rows sampled per iteration (`>= n` degenerates to full
        /// passes).
        batch: usize,
    },
}

/// How a trained model expects incoming rows to be normalized before a
/// nearest-centroid scan. Recorded as model metadata by the serving layer:
/// a query must be transformed exactly like a training row was, or the
/// model answers a different question than it was fitted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Rows are used as-is (Lloyd, fuzzy, mini-batch).
    #[default]
    None,
    /// Rows are scaled by `1/‖x‖` (spherical: training contributes unit
    /// directions to unit-norm centroids, so against those centroids the
    /// Euclidean argmin over a *unit* query equals the cosine argmax).
    /// Zero rows are left untouched, exactly like training weighted them 0.
    UnitRow,
}

impl Normalization {
    /// Stable name for metadata files and the wire protocol.
    pub fn name(&self) -> &'static str {
        match self {
            Normalization::None => "none",
            Normalization::UnitRow => "unitrow",
        }
    }

    /// Inverse of [`Normalization::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Normalization::None),
            "unitrow" => Some(Normalization::UnitRow),
            _ => None,
        }
    }

    /// Apply to one row, writing the (possibly rescaled) row into `out`.
    /// The arithmetic is the scaling spherical training applies: multiply
    /// by the reciprocal norm `1/‖x‖` computed via [`sqnorm`] — the same
    /// chunked summation, so serving and training agree bit for bit.
    pub fn apply(&self, row: &[f64], out: &mut [f64]) {
        debug_assert_eq!(row.len(), out.len());
        match self {
            Normalization::None => out.copy_from_slice(row),
            Normalization::UnitRow => {
                let n = sqnorm(row).sqrt();
                if n > 0.0 {
                    let inv = 1.0 / n;
                    for (o, x) in out.iter_mut().zip(row) {
                        *o = inv * x;
                    }
                } else {
                    out.copy_from_slice(row);
                }
            }
        }
    }
}

impl Algorithm {
    /// Short stable name (CLI, benchmarks, logs).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Lloyd => "lloyd",
            Algorithm::Spherical => "spherical",
            Algorithm::Fuzzy { .. } => "fuzzy",
            Algorithm::MiniBatch { .. } => "minibatch",
        }
    }

    /// Whether MTI pruning is sound for this algorithm (engines AND the
    /// driver both consult this; either is sufficient to disable).
    pub fn prune_eligible(&self) -> bool {
        matches!(self, Algorithm::Lloyd)
    }

    /// The row normalization a model trained by this algorithm expects of
    /// its queries (serving metadata).
    pub fn normalization(&self) -> Normalization {
        match self {
            Algorithm::Spherical => Normalization::UnitRow,
            _ => Normalization::None,
        }
    }

    /// Self-describing spec string: `lloyd`, `spherical`, `fuzzy:2.0`,
    /// `minibatch:512`. Round-trips through [`Algorithm::parse_spec`]
    /// (metadata files, the serve wire protocol).
    pub fn spec_string(&self) -> String {
        match self {
            Algorithm::Lloyd => "lloyd".into(),
            Algorithm::Spherical => "spherical".into(),
            Algorithm::Fuzzy { m } => format!("fuzzy:{m:?}"),
            Algorithm::MiniBatch { batch } => format!("minibatch:{batch}"),
        }
    }

    /// Inverse of [`Algorithm::spec_string`]. Parameterless `fuzzy` /
    /// `minibatch` get the conventional defaults (`m = 2.0`, `batch = 0`
    /// is rejected — a batch size is required without an `n` to derive it
    /// from). Returns `None` on malformed or out-of-domain specs.
    pub fn parse_spec(s: &str) -> Option<Algorithm> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        match (head, arg) {
            ("lloyd", None) => Some(Algorithm::Lloyd),
            ("spherical", None) => Some(Algorithm::Spherical),
            ("fuzzy", None) => Some(Algorithm::Fuzzy { m: 2.0 }),
            ("fuzzy", Some(a)) => {
                let m: f64 = a.parse().ok()?;
                (m > 1.0).then_some(Algorithm::Fuzzy { m })
            }
            ("minibatch", Some(a)) => {
                let batch: usize = a.parse().ok()?;
                (batch >= 1).then_some(Algorithm::MiniBatch { batch })
            }
            _ => None,
        }
    }

    /// Build the runnable instance. `k` sizes per-cluster state, `n_total`
    /// is the *global* row count (knord passes the whole matrix's `n`, not
    /// the rank slice), `seed` feeds the mini-batch sampler.
    pub fn resolve(&self, k: usize, n_total: usize, seed: u64) -> Box<dyn MmAlgorithm> {
        match self {
            Algorithm::Lloyd => Box::new(LloydAlgo),
            Algorithm::Spherical => Box::new(SphericalAlgo { zero_norms: vec![0.0; k] }),
            Algorithm::Fuzzy { m } => {
                assert!(*m > 1.0, "fuzzifier must exceed 1 (got {m})");
                Box::new(FuzzyAlgo { exponent: 1.0 / (m - 1.0) })
            }
            Algorithm::MiniBatch { batch } => {
                assert!(*batch >= 1, "mini-batch size must be positive");
                Box::new(MiniBatchAlgo {
                    batch: *batch,
                    n_total: n_total.max(1),
                    seed,
                    cum_counts: Mutex::new(vec![0u64; k]),
                })
            }
        }
    }
}

/// One row's map-phase decision: the chosen cluster and the weight with
/// which the row contributes to it (`sums += weight·x`, `weights += weight`,
/// `counts += 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapOut {
    /// Chosen cluster.
    pub cluster: u32,
    /// Contribution weight (1.0 for hard, unweighted algorithms).
    pub weight: f64,
}

/// Everything the update phase sees: the globally merged (and, on knord,
/// allreduced) accumulator state plus the previous model.
pub struct UpdateCtx<'a> {
    /// Iteration number, 0-based.
    pub iter: usize,
    /// Merged `k·d` weighted coordinate sums.
    pub sums: &'a [f64],
    /// Merged per-cluster member counts.
    pub counts: &'a [i64],
    /// Merged per-cluster weight totals (equals `counts` for weight-1.0
    /// algorithms, zeros on the legacy Lloyd fast path which never reads
    /// them).
    pub weights: &'a [f64],
    /// The previous model `C^t`.
    pub prev: &'a Centroids,
    /// The next model `C^{t+1}` to fill (same shape as `prev`; clusters the
    /// algorithm leaves untouched must be copied from `prev` explicitly).
    pub next: &'a mut Centroids,
}

/// A clustering algorithm expressed as the two-phase map/update interface,
/// runnable on all three engines (knori / knors / knord) through the
/// shared driver.
///
/// Implementations must be deterministic functions of their inputs: every
/// knord rank runs `update` independently on identical (allreduced) state
/// and must produce identical models.
pub trait MmAlgorithm: Sync {
    /// Short stable name.
    fn name(&self) -> &'static str;

    /// True only for the canonical Lloyd instance: the driver then takes
    /// the legacy Euclid/MTI code paths (bitwise identical to the
    /// pre-trait engine) instead of the generic map/update path.
    fn is_lloyd(&self) -> bool {
        false
    }

    /// Whether the MTI triangle-inequality clauses are sound. Only exact
    /// Euclidean distance + hard assignment + mean update qualifies;
    /// engines force pruning off when this is false.
    fn prune_eligible(&self) -> bool {
        false
    }

    /// True when [`MmAlgorithm::row_in_scope`] can return false — lets the
    /// engines skip the virtual call per row in the common case.
    fn subsamples(&self) -> bool {
        false
    }

    /// True when [`MmAlgorithm::update`] reads `UpdateCtx::weights`.
    /// knord ships the k-lane weights segment in its allreduce only for
    /// these algorithms; everyone else keeps the paper's
    /// `(k·d + k + scalars)` payload shape.
    fn uses_weights(&self) -> bool {
        false
    }

    /// Per-iteration row filter, consulted *before* the row's data is
    /// fetched (in knors: before the I/O request is issued — the same
    /// no-touch path as a Clause-1 skip). `global_row` is the row's id in
    /// the whole matrix, identical across engines and knord ranks.
    fn row_in_scope(&self, _global_row: usize, _iter: usize) -> bool {
        true
    }

    /// One-time hook on the initial centroids before iteration 0
    /// (spherical normalizes them to unit length here).
    fn prepare_init(&self, _init: &mut Centroids) {}

    /// The map phase for one row: pick a cluster and a weight.
    fn map(&self, v: &[f64], cents: &Centroids) -> MapOut;

    /// The map phase over a staged contiguous `m × d` block, filling
    /// `best[i]`/`weights[i]` per row (both cleared and resized by the
    /// implementation). The default loops [`MmAlgorithm::map`];
    /// implementations with a batched kernel (spherical's dot-product
    /// micro-kernel) override it. `score` is reusable grow-only scratch.
    fn map_block(
        &self,
        block: &[f64],
        d: usize,
        cents: &Centroids,
        best: &mut Vec<u32>,
        weights: &mut Vec<f64>,
        _score: &mut Vec<f64>,
    ) {
        best.clear();
        weights.clear();
        for row in block.chunks_exact(d.max(1)) {
            let o = self.map(row, cents);
            best.push(o.cluster);
            weights.push(o.weight);
        }
    }

    /// The update phase: fold the merged accumulators into `ctx.next`.
    /// Runs once per iteration in the coordinator's exclusive window,
    /// after the engine's global reduction.
    fn update(&self, ctx: &mut UpdateCtx<'_>);

    /// The convergence decision, made from globally-reduced quantities.
    fn converged(&self, reassigned: u64, max_drift: f64, tol: f64) -> bool {
        reassigned == 0 || (tol > 0.0 && max_drift <= tol)
    }
}

// ---------------------------------------------------------------------------
// Lloyd's k-means — the canonical instance
// ---------------------------------------------------------------------------

/// Plain Lloyd's k-means. The driver special-cases [`MmAlgorithm::is_lloyd`]
/// onto the legacy tiled/MTI machinery, so `map`/`update` here only serve
/// the generic path's contract (and tests); they implement the identical
/// mathematics.
pub struct LloydAlgo;

impl MmAlgorithm for LloydAlgo {
    fn name(&self) -> &'static str {
        "lloyd"
    }

    fn is_lloyd(&self) -> bool {
        true
    }

    fn prune_eligible(&self) -> bool {
        true
    }

    fn map(&self, v: &[f64], cents: &Centroids) -> MapOut {
        let (a, _) = nearest(v, &cents.means, cents.k());
        MapOut { cluster: a as u32, weight: 1.0 }
    }

    fn update(&self, ctx: &mut UpdateCtx<'_>) {
        finalize_means(ctx.sums, ctx.counts, ctx.prev, ctx.next);
    }
}

// ---------------------------------------------------------------------------
// Spherical k-means
// ---------------------------------------------------------------------------

/// Spherical k-means: maximize cosine similarity. With unit-norm centroids
/// (maintained by `prepare_init` + `update`), `argmax_c cos(x, c) =
/// argmax_c x·c`, so the map phase is a pure dot-product scan — the blocked
/// path reuses the kernel layer's dot micro-kernel by running the
/// norm-trick tile scan with zeroed centroid norms (score `0 − 2·x·c`,
/// whose argmin is exactly the dot argmax, ties and all). Rows contribute
/// their unit direction: weight `= 1/‖x‖` (0 for zero rows).
struct SphericalAlgo {
    /// `k` zeros standing in for `‖c‖²` in the norm-trick scan, which turns
    /// its score into a pure (scaled, negated) dot product.
    zero_norms: Vec<f64>,
}

impl SphericalAlgo {
    #[inline]
    fn row_weight(v: &[f64]) -> f64 {
        let n = sqnorm(v).sqrt();
        if n > 0.0 {
            1.0 / n
        } else {
            0.0
        }
    }
}

impl MmAlgorithm for SphericalAlgo {
    fn name(&self) -> &'static str {
        "spherical"
    }

    fn prepare_init(&self, init: &mut Centroids) {
        let (k, d) = (init.k(), init.d);
        for c in 0..k {
            let row = &mut init.means[c * d..(c + 1) * d];
            let n = sqnorm(row).sqrt();
            if n > 0.0 {
                for x in row.iter_mut() {
                    *x /= n;
                }
            }
        }
    }

    fn map(&self, v: &[f64], cents: &Centroids) -> MapOut {
        // Scored exactly like the blocked path: minimize `−2·x·c` with a
        // strict `<` in ascending index order (ties break low, like every
        // other knor scan).
        let mut best = 0u32;
        let mut best_score = f64::INFINITY;
        for c in 0..cents.k() {
            let score = -2.0 * dot(v, cents.mean(c));
            if score < best_score {
                best_score = score;
                best = c as u32;
            }
        }
        MapOut { cluster: best, weight: Self::row_weight(v) }
    }

    fn map_block(
        &self,
        block: &[f64],
        d: usize,
        cents: &Centroids,
        best: &mut Vec<u32>,
        weights: &mut Vec<f64>,
        score: &mut Vec<f64>,
    ) {
        // The norm-trick resolved kernel with `‖c‖² = 0` scores candidates
        // by `−2·x·c`: the dot-product micro-kernel (AVX where available)
        // does all the work, `need_dist = false` skips the distance
        // reconstruction it would otherwise perform.
        let rk = KernelKind::NormTrick.resolve(cents.k(), d, false);
        assign_rows(block, d, cents, &rk, &self.zero_norms, best, score, false);
        weights.clear();
        for row in block.chunks_exact(d.max(1)) {
            weights.push(Self::row_weight(row));
        }
    }

    fn update(&self, ctx: &mut UpdateCtx<'_>) {
        let (k, d) = (ctx.prev.k(), ctx.prev.d);
        for c in 0..k {
            let dst = &mut ctx.next.means[c * d..(c + 1) * d];
            let sum = &ctx.sums[c * d..(c + 1) * d];
            let norm = sqnorm(sum).sqrt();
            if ctx.counts[c] > 0 && norm > 0.0 {
                for (m, s) in dst.iter_mut().zip(sum) {
                    *m = s / norm;
                }
            } else {
                // Empty (or fully cancelling) cluster keeps its direction.
                dst.copy_from_slice(ctx.prev.mean(c));
            }
            ctx.next.counts[c] = ctx.counts[c].max(0) as u64;
        }
    }
}

// ---------------------------------------------------------------------------
// Fuzzy-weighted k-means
// ---------------------------------------------------------------------------

/// Hard assignment to the nearest centroid, soft contribution: the weight
/// is the row's fuzzy-c-means membership of the winning cluster, and the
/// update divides the weighted sums by the accumulated weights — the
/// non-trivial merge phase that forces the engines to carry a weights lane
/// through the merge and the knord allreduce.
struct FuzzyAlgo {
    /// `1/(m−1)` for fuzzifier `m`.
    exponent: f64,
}

impl MmAlgorithm for FuzzyAlgo {
    fn name(&self) -> &'static str {
        "fuzzy"
    }

    fn uses_weights(&self) -> bool {
        true
    }

    fn converged(&self, _reassigned: u64, max_drift: f64, tol: f64) -> bool {
        // Stable hard assignments are not a fixed point here: the
        // membership weights are recomputed from the new centroids every
        // pass and keep moving the weighted means. Only zero drift (or
        // the user's tolerance) ends the run early.
        max_drift == 0.0 || (tol > 0.0 && max_drift <= tol)
    }

    fn map(&self, v: &[f64], cents: &Centroids) -> MapOut {
        // Reference path (tests, serial mirrors): recomputes the k
        // distances for the membership sum. The engines go through
        // `map_block`, which caches them in scratch instead.
        let k = cents.k();
        let mut best = 0usize;
        let mut best_s = f64::INFINITY;
        for c in 0..k {
            let s = sqdist(v, cents.mean(c));
            if s < best_s {
                best_s = s;
                best = c;
            }
        }
        if best_s <= 0.0 {
            // On top of a centroid: full membership.
            return MapOut { cluster: best as u32, weight: 1.0 };
        }
        // u_best = 1 / Σ_c (s_best/s_c)^{1/(m−1)}. Every ratio is in
        // (0, 1] (s_best is the minimum and all s_c > 0 here), the c=best
        // term is exactly 1, so the weight lands in (0, 1].
        let mut inv = 0.0;
        for c in 0..k {
            let s = sqdist(v, cents.mean(c));
            inv += (best_s / s).powf(self.exponent);
        }
        MapOut { cluster: best as u32, weight: 1.0 / inv }
    }

    fn map_block(
        &self,
        block: &[f64],
        d: usize,
        cents: &Centroids,
        best: &mut Vec<u32>,
        weights: &mut Vec<f64>,
        score: &mut Vec<f64>,
    ) {
        // One distance scan per row: the k squared distances land in the
        // reusable `score` scratch and feed both the argmin and the
        // membership normalizer (`map` would compute each twice). Same
        // arithmetic, bit for bit — sqdist is deterministic.
        let k = cents.k();
        best.clear();
        weights.clear();
        score.clear();
        score.resize(k, 0.0);
        for row in block.chunks_exact(d.max(1)) {
            let mut b = 0usize;
            let mut bs = f64::INFINITY;
            for (c, sc) in score.iter_mut().enumerate() {
                let s = sqdist(row, cents.mean(c));
                *sc = s;
                if s < bs {
                    bs = s;
                    b = c;
                }
            }
            let w = if bs <= 0.0 {
                1.0
            } else {
                let mut inv = 0.0;
                for &s in score.iter() {
                    inv += (bs / s).powf(self.exponent);
                }
                1.0 / inv
            };
            best.push(b as u32);
            weights.push(w);
        }
    }

    fn update(&self, ctx: &mut UpdateCtx<'_>) {
        let (k, d) = (ctx.prev.k(), ctx.prev.d);
        for c in 0..k {
            let dst = &mut ctx.next.means[c * d..(c + 1) * d];
            let w = ctx.weights[c];
            if w > 0.0 {
                let inv = 1.0 / w;
                for (m, s) in dst.iter_mut().zip(&ctx.sums[c * d..(c + 1) * d]) {
                    *m = s * inv;
                }
            } else {
                dst.copy_from_slice(ctx.prev.mean(c));
            }
            ctx.next.counts[c] = ctx.counts[c].max(0) as u64;
        }
    }
}

// ---------------------------------------------------------------------------
// Mini-batch k-means
// ---------------------------------------------------------------------------

/// Driver-backed mini-batch k-means. Iteration 0 assigns every row (so no
/// row is left unassigned); later iterations sample each row independently
/// with probability `batch/n` via a seeded hash of `(seed, iter,
/// global_row)` — stateless, so every engine and every knord rank agrees
/// without communication, and out-of-batch rows are skipped *before* their
/// data is fetched. The update is the batch form of Sculley's per-center
/// learning rate: with cumulative count `N_c` and a batch of `m_c` rows
/// summing to `S_c`, `N_c += m_c`, `η = m_c/N_c`, `c ← (1−η)·c +
/// η·(S_c/m_c)` (iteration 0 reduces to the plain mean).
struct MiniBatchAlgo {
    batch: usize,
    n_total: usize,
    seed: u64,
    /// Cumulative per-center sample counts `N_c` across iterations.
    /// Mutated only inside the coordinator's exclusive update window
    /// (uncontended); identical on every knord rank because the inputs are
    /// allreduced.
    cum_counts: Mutex<Vec<u64>>,
}

/// SplitMix64 — the standard 64-bit finalizing mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl MmAlgorithm for MiniBatchAlgo {
    fn name(&self) -> &'static str {
        "minibatch"
    }

    fn subsamples(&self) -> bool {
        true
    }

    fn row_in_scope(&self, global_row: usize, iter: usize) -> bool {
        if iter == 0 || self.batch >= self.n_total {
            return true;
        }
        let h = splitmix64(self.seed ^ (iter as u64).rotate_left(32) ^ global_row as u64);
        // Include iff h/2^64 < batch/n, in exact integer arithmetic.
        (h as u128) * (self.n_total as u128) < (self.batch as u128) << 64
    }

    fn map(&self, v: &[f64], cents: &Centroids) -> MapOut {
        let (a, _) = nearest(v, &cents.means, cents.k());
        MapOut { cluster: a as u32, weight: 1.0 }
    }

    fn update(&self, ctx: &mut UpdateCtx<'_>) {
        let (k, d) = (ctx.prev.k(), ctx.prev.d);
        let mut cum = self.cum_counts.lock().expect("mini-batch state poisoned");
        for c in 0..k {
            let m_c = ctx.counts[c].max(0) as u64;
            let dst = &mut ctx.next.means[c * d..(c + 1) * d];
            if m_c == 0 {
                dst.copy_from_slice(ctx.prev.mean(c));
                ctx.next.counts[c] = cum[c];
                continue;
            }
            cum[c] += m_c;
            let eta = m_c as f64 / cum[c] as f64;
            let inv_m = 1.0 / m_c as f64;
            let sum = &ctx.sums[c * d..(c + 1) * d];
            let prev = ctx.prev.mean(c);
            for j in 0..d {
                dst[j] = (1.0 - eta) * prev[j] + eta * (sum[j] * inv_m);
            }
            ctx.next.counts[c] = cum[c];
        }
    }

    fn converged(&self, _reassigned: u64, max_drift: f64, tol: f64) -> bool {
        // An empty or tiny batch trivially reassigns nothing; only centroid
        // drift (when a tolerance is set) or the iteration cap stops us.
        tol > 0.0 && max_drift <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knor_matrix::DMatrix;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_cents(k: usize, d: usize, seed: u64) -> Centroids {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut c = Centroids::zeros(k, d);
        for x in c.means.iter_mut() {
            *x = rng.gen_range(-3.0..3.0);
        }
        c
    }

    #[test]
    fn lloyd_map_is_nearest_and_update_is_finalize_means() {
        let cents = random_cents(5, 4, 1);
        let v = [0.3, -1.2, 0.8, 2.0];
        let o = LloydAlgo.map(&v, &cents);
        let (a, _) = nearest(&v, &cents.means, 5);
        assert_eq!(o.cluster as usize, a);
        assert_eq!(o.weight, 1.0);
        assert!(LloydAlgo.is_lloyd() && LloydAlgo.prune_eligible());
    }

    #[test]
    fn spherical_map_block_matches_scalar_map() {
        let algo = Algorithm::Spherical.resolve(7, 100, 0);
        let mut cents = random_cents(7, 6, 2);
        algo.prepare_init(&mut cents);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let block: Vec<f64> = (0..23 * 6).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let (mut best, mut weights, mut score) = (Vec::new(), Vec::new(), Vec::new());
        algo.map_block(&block, 6, &cents, &mut best, &mut weights, &mut score);
        for (i, row) in block.chunks_exact(6).enumerate() {
            let o = algo.map(row, &cents);
            assert_eq!(best[i], o.cluster, "row {i}");
            assert_eq!(weights[i].to_bits(), o.weight.to_bits(), "row {i} weight");
        }
    }

    #[test]
    fn fuzzy_map_block_matches_scalar_map() {
        // The cached-distance block path must be bit-identical to the
        // recomputing reference `map`.
        let algo = Algorithm::Fuzzy { m: 1.7 }.resolve(9, 100, 0);
        let cents = random_cents(9, 5, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let block: Vec<f64> = (0..31 * 5).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let (mut best, mut weights, mut score) = (Vec::new(), Vec::new(), Vec::new());
        algo.map_block(&block, 5, &cents, &mut best, &mut weights, &mut score);
        for (i, row) in block.chunks_exact(5).enumerate() {
            let o = algo.map(row, &cents);
            assert_eq!(best[i], o.cluster, "row {i}");
            assert_eq!(weights[i].to_bits(), o.weight.to_bits(), "row {i} weight");
        }
    }

    #[test]
    fn spherical_prepare_init_unit_norms() {
        let algo = Algorithm::Spherical.resolve(3, 10, 0);
        let mut c =
            Centroids::from_matrix(&DMatrix::from_vec(vec![3.0, 4.0, 0.0, 0.0, 1.0, 1.0], 3, 2));
        algo.prepare_init(&mut c);
        assert!((sqnorm(c.mean(0)) - 1.0).abs() < 1e-12);
        assert_eq!(c.mean(1), &[0.0, 0.0], "zero rows untouched");
        assert!((sqnorm(c.mean(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fuzzy_weights_are_normalized_memberships() {
        let algo = Algorithm::Fuzzy { m: 2.0 }.resolve(6, 100, 0);
        let cents = random_cents(6, 5, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..300 {
            let v: Vec<f64> = (0..5).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let o = algo.map(&v, &cents);
            assert!(o.weight.is_finite());
            assert!(o.weight > 0.0 && o.weight <= 1.0, "weight {} out of (0,1]", o.weight);
            // The hard choice is still the nearest centroid.
            let (a, _) = nearest(&v, &cents.means, 6);
            assert_eq!(o.cluster as usize, a);
        }
        // Sitting exactly on a centroid gives full membership.
        let on = cents.mean(2).to_vec();
        assert_eq!(algo.map(&on, &cents).weight, 1.0);
    }

    #[test]
    fn minibatch_sampling_is_deterministic_and_near_target_rate() {
        let n = 20_000usize;
        let batch = 2_000usize;
        let algo = Algorithm::MiniBatch { batch }.resolve(4, n, 7);
        assert!(algo.subsamples());
        for iter in [1usize, 2, 9] {
            let hits = (0..n).filter(|&r| algo.row_in_scope(r, iter)).count();
            let hits2 = (0..n).filter(|&r| algo.row_in_scope(r, iter)).count();
            assert_eq!(hits, hits2, "sampling must be stateless");
            // Bernoulli(batch/n): within ±25% of the target at this n.
            assert!(
                (hits as f64 - batch as f64).abs() < 0.25 * batch as f64,
                "iter {iter}: sampled {hits}, wanted ≈{batch}"
            );
        }
        // Iteration 0 covers everything.
        assert!((0..n).all(|r| algo.row_in_scope(r, 0)));
    }

    #[test]
    fn minibatch_update_is_batch_learning_rate() {
        let algo = Algorithm::MiniBatch { batch: 4 }.resolve(2, 8, 0);
        let prev = Centroids::from_matrix(&DMatrix::from_vec(vec![0.0, 0.0, 10.0, 10.0], 2, 2));
        let mut next = Centroids::zeros(2, 2);
        // Iteration 0: N starts at 0, so the update is the plain batch mean.
        let sums = vec![4.0, 8.0, 0.0, 0.0];
        let counts = vec![2i64, 0];
        let weights = vec![2.0, 0.0];
        let mut ctx = UpdateCtx {
            iter: 0,
            sums: &sums,
            counts: &counts,
            weights: &weights,
            prev: &prev,
            next: &mut next,
        };
        algo.update(&mut ctx);
        assert_eq!(next.mean(0), &[2.0, 4.0]);
        assert_eq!(next.mean(1), &[10.0, 10.0], "empty cluster keeps position");
        // Second batch: N=2, m=2 → η = 0.5, halfway toward the batch mean.
        let prev2 = next.clone();
        let mut next2 = Centroids::zeros(2, 2);
        let sums2 = vec![12.0, 16.0, 0.0, 0.0];
        let mut ctx2 = UpdateCtx {
            iter: 1,
            sums: &sums2,
            counts: &counts,
            weights: &weights,
            prev: &prev2,
            next: &mut next2,
        };
        algo.update(&mut ctx2);
        assert_eq!(next2.mean(0), &[4.0, 6.0]); // (2,4)·½ + (6,8)·½
    }

    #[test]
    fn converged_hooks() {
        let lloyd = LloydAlgo;
        assert!(lloyd.converged(0, 1.0, 0.0));
        assert!(!lloyd.converged(5, 1.0, 0.0));
        assert!(lloyd.converged(5, 0.01, 0.05));
        let mb = Algorithm::MiniBatch { batch: 8 }.resolve(2, 100, 0);
        assert!(!mb.converged(0, 1.0, 0.0), "mini-batch ignores reassignments");
        assert!(mb.converged(9, 0.01, 0.05));
    }

    #[test]
    fn spec_strings_round_trip() {
        for algo in [
            Algorithm::Lloyd,
            Algorithm::Spherical,
            Algorithm::Fuzzy { m: 1.7 },
            Algorithm::Fuzzy { m: 2.0 },
            Algorithm::MiniBatch { batch: 512 },
        ] {
            let spec = algo.spec_string();
            assert_eq!(Algorithm::parse_spec(&spec), Some(algo.clone()), "spec {spec}");
        }
        assert_eq!(Algorithm::parse_spec("fuzzy"), Some(Algorithm::Fuzzy { m: 2.0 }));
        for bad in ["", "kmedoids", "fuzzy:1.0", "fuzzy:x", "minibatch", "minibatch:0", "lloyd:3"] {
            assert_eq!(Algorithm::parse_spec(bad), None, "spec {bad:?} must be rejected");
        }
    }

    #[test]
    fn normalization_metadata_and_apply() {
        assert_eq!(Algorithm::Lloyd.normalization(), Normalization::None);
        assert_eq!(Algorithm::Spherical.normalization(), Normalization::UnitRow);
        assert_eq!(Normalization::parse("unitrow"), Some(Normalization::UnitRow));
        assert_eq!(Normalization::parse("bogus"), None);

        let row = [3.0, 4.0];
        let mut out = [0.0; 2];
        Normalization::UnitRow.apply(&row, &mut out);
        // Must match the training-side arithmetic exactly: x * (1/‖x‖).
        let inv = 1.0 / sqnorm(&row).sqrt();
        assert_eq!(out, [3.0 * inv, 4.0 * inv]);
        Normalization::None.apply(&row, &mut out);
        assert_eq!(out, row);
        let zero = [0.0, 0.0];
        Normalization::UnitRow.apply(&zero, &mut out);
        assert_eq!(out, zero, "zero rows pass through");
    }

    #[test]
    fn resolve_names_and_eligibility() {
        for (algo, name, prune) in [
            (Algorithm::Lloyd, "lloyd", true),
            (Algorithm::Spherical, "spherical", false),
            (Algorithm::Fuzzy { m: 2.0 }, "fuzzy", false),
            (Algorithm::MiniBatch { batch: 32 }, "minibatch", false),
        ] {
            assert_eq!(algo.name(), name);
            assert_eq!(algo.prune_eligible(), prune);
            let r = algo.resolve(4, 100, 1);
            assert_eq!(r.name(), name);
            assert_eq!(r.prune_eligible(), prune);
            assert_eq!(r.is_lloyd(), prune);
        }
    }
}
