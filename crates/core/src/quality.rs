//! Clustering quality metrics used by tests, examples and the harness.

use crate::distance::{nearest, sqdist};
use knor_matrix::DMatrix;

/// Within-cluster sum of squared Euclidean distances under the given
/// assignment.
pub fn sse(data: &DMatrix, centroids: &DMatrix, assignments: &[u32]) -> f64 {
    assert_eq!(data.nrow(), assignments.len());
    assert_eq!(data.ncol(), centroids.ncol());
    data.rows().zip(assignments).map(|(row, &a)| sqdist(row, centroids.row(a as usize))).sum()
}

/// SSE under the *optimal* assignment to the given centroids (recomputes
/// nearest centroids; useful to validate a solver's reported assignment).
pub fn sse_optimal_assignment(data: &DMatrix, centroids: &DMatrix) -> f64 {
    let k = centroids.nrow();
    data.rows()
        .map(|row| {
            let (_, d) = nearest(row, centroids.as_slice(), k);
            d * d
        })
        .sum()
}

/// Fraction of rows on which two assignments agree, maximized over a greedy
/// label matching (clusterings are invariant to label permutation).
pub fn agreement(a: &[u32], b: &[u32], k: usize) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 1.0;
    }
    // Confusion counts.
    let mut conf = vec![0u64; k * k];
    for (&x, &y) in a.iter().zip(b) {
        conf[x as usize * k + y as usize] += 1;
    }
    // Greedy matching: repeatedly take the largest cell.
    let mut used_row = vec![false; k];
    let mut used_col = vec![false; k];
    let mut matched = 0u64;
    for _ in 0..k {
        let mut best = 0u64;
        let mut best_rc = None;
        for r in 0..k {
            if used_row[r] {
                continue;
            }
            for c in 0..k {
                if used_col[c] {
                    continue;
                }
                if conf[r * k + c] > best {
                    best = conf[r * k + c];
                    best_rc = Some((r, c));
                }
            }
        }
        match best_rc {
            Some((r, c)) => {
                matched += best;
                used_row[r] = true;
                used_col[c] = true;
            }
            None => break,
        }
    }
    matched as f64 / a.len() as f64
}

/// Match computed centroids to reference centers greedily and return the
/// maximum matched distance (how far each recovered center is from its
/// planted counterpart).
pub fn max_center_error(computed: &DMatrix, reference: &DMatrix) -> f64 {
    assert_eq!(computed.ncol(), reference.ncol());
    let k = computed.nrow().min(reference.nrow());
    let mut used = vec![false; reference.nrow()];
    let mut worst: f64 = 0.0;
    for i in 0..k {
        let mut best = f64::INFINITY;
        let mut best_j = 0;
        for (j, &in_use) in used.iter().enumerate() {
            if in_use {
                continue;
            }
            let d = sqdist(computed.row(i), reference.row(j)).sqrt();
            if d < best {
                best = d;
                best_j = j;
            }
        }
        used[best_j] = true;
        worst = worst.max(best);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_basic() {
        let data = DMatrix::from_vec(vec![0.0, 2.0, 10.0, 12.0], 4, 1);
        let cents = DMatrix::from_vec(vec![1.0, 11.0], 2, 1);
        let assign = vec![0, 0, 1, 1];
        assert!((sse(&data, &cents, &assign) - 4.0).abs() < 1e-12);
        assert!((sse_optimal_assignment(&data, &cents) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sse_optimal_never_exceeds_given() {
        let data = DMatrix::from_vec(vec![0.0, 2.0, 10.0, 12.0], 4, 1);
        let cents = DMatrix::from_vec(vec![1.0, 11.0], 2, 1);
        let bad_assign = vec![1, 0, 0, 1];
        assert!(sse_optimal_assignment(&data, &cents) <= sse(&data, &cents, &bad_assign));
    }

    #[test]
    fn agreement_is_permutation_invariant() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1]; // same clustering, relabeled
        assert_eq!(agreement(&a, &b, 3), 1.0);
        let c = vec![0, 1, 0, 1, 0, 1]; // unrelated
        assert!(agreement(&a, &c, 3) < 1.0);
    }

    #[test]
    fn center_error_matches_greedily() {
        let computed = DMatrix::from_vec(vec![0.0, 0.0, 10.0, 10.0], 2, 2);
        let reference = DMatrix::from_vec(vec![10.1, 10.0, 0.0, 0.1], 2, 2);
        let e = max_center_error(&computed, &reference);
        assert!(e < 0.2, "error {e}");
    }
}
