//! The blocked assignment kernel layer.
//!
//! Every engine's compute super-phase bottoms out in the same operation:
//! "assign a batch of rows to their nearest centroids". The per-row
//! [`crate::distance::nearest`] scan re-streams the whole `k x d` centroid
//! matrix from memory for every row and exposes only one row's worth of
//! instruction-level parallelism. This module replaces it, for full-scan
//! iterations, with a row-tile × centroid-tile kernel:
//!
//! * rows are staged in blocks that fit alongside a centroid tile in L1/L2,
//! * the inner micro-kernel evaluates **four rows against two centroids**
//!   at a time, amortizing every centroid load 4× and every row load 2×,
//!   with eight independent accumulator vectors hiding the FP latency,
//! * each `(row, centroid)` pair still performs *exactly* the arithmetic of
//!   [`crate::distance::sqdist`] (same chunking, same summation order) and
//!   candidates are compared in ascending index order with a strict `<`, so
//!   the tiled kernel is **bitwise identical** to the scalar scan — and
//!   therefore to `serial.rs`.
//!
//! An opt-in norm-trick path computes `‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²`
//! from cached centroid norms (maintained incrementally by the driver: only
//! centroids with non-zero drift are re-normed). Dot products cost half the
//! arithmetic of difference-squares, but the cancellation re-orders floating
//! point, so this path is only *approximately* equal to the reference
//! (≤ 1e-9 relative on distances, see DESIGN.md §7) and is never used where
//! MTI bound invariants require exact upper bounds.
//!
//! MTI iterations (`iter > 0` with pruning on) keep the per-row clause
//! machine — each row carries its own bound state, so there is no shared
//! centroid tile to batch against.

use crate::centroids::Centroids;
use crate::distance::{nearest, sqdist};

/// Which assignment kernel a run requests (the `DriverConfig` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelKind {
    /// Pick per shape: scalar for tiny `k·d`, GEMM for large unpruned
    /// shapes, tiled otherwise.
    #[default]
    Auto,
    /// The per-row `nearest` scan (the pre-kernel behaviour).
    Scalar,
    /// Row-tile × centroid-tile blocked scan; bitwise equal to `Scalar`.
    Tiled,
    /// The tiled scan with FMA/AVX2 micro-kernels. Fused rounding differs
    /// from the reference, so this path carries a ≤ 1e-9 parity band and
    /// downgrades to `Tiled` while MTI needs exact bounds.
    Fma,
    /// `‖x‖² − 2x·c + ‖c‖²` with cached centroid norms; only
    /// approximately equal (and ignored while MTI needs exact bounds).
    NormTrick,
    /// The norm-trick assignment restructured as a blocked GEMM
    /// (`−2XCᵀ` by k-panel × row-panel × d-block, FMA where available);
    /// same ≤ 1e-9 band and MTI downgrade as `NormTrick`.
    Gemm,
}

impl KernelKind {
    /// Parse a CLI spelling (`--kernel …`).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "auto" => KernelKind::Auto,
            "scalar" => KernelKind::Scalar,
            "tiled" => KernelKind::Tiled,
            "fma" => KernelKind::Fma,
            "norm" | "normtrick" => KernelKind::NormTrick,
            "gemm" => KernelKind::Gemm,
            _ => return None,
        })
    }

    /// The CLI spelling of this knob.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Auto => "auto",
            KernelKind::Scalar => "scalar",
            KernelKind::Tiled => "tiled",
            KernelKind::Fma => "fma",
            KernelKind::NormTrick => "norm",
            KernelKind::Gemm => "gemm",
        }
    }
}

/// The kernel actually selected for a run, after the heuristic resolved
/// `Auto` and legality downgraded the approximate paths where bounds must
/// be exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedKind {
    /// Per-row scans.
    Scalar,
    /// Blocked, bitwise-exact scans.
    Tiled,
    /// Blocked scans with FMA micro-kernels (≤ 1e-9 band).
    Fma,
    /// Blocked dot-product scans with cached norms.
    NormTrick,
    /// Blocked-GEMM dot-product scans with cached norms (≤ 1e-9 band).
    Gemm,
}

impl ResolvedKind {
    /// Stable short name (tune-table serialization, `--stats`).
    pub fn name(self) -> &'static str {
        match self {
            ResolvedKind::Scalar => "scalar",
            ResolvedKind::Tiled => "tiled",
            ResolvedKind::Fma => "fma",
            ResolvedKind::NormTrick => "norm",
            ResolvedKind::Gemm => "gemm",
        }
    }

    /// Inverse of [`ResolvedKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "scalar" => ResolvedKind::Scalar,
            "tiled" => ResolvedKind::Tiled,
            "fma" => ResolvedKind::Fma,
            "norm" => ResolvedKind::NormTrick,
            "gemm" => ResolvedKind::Gemm,
            _ => return None,
        })
    }

    /// Whether this path needs the cached centroid squared norms.
    pub fn needs_cnorms(self) -> bool {
        matches!(self, ResolvedKind::NormTrick | ResolvedKind::Gemm)
    }
}

/// A resolved kernel selection: the path plus the tile shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedKernel {
    /// Which code path full scans take.
    pub kind: ResolvedKind,
    /// Rows staged per block.
    pub row_tile: usize,
    /// Centroids per inner tile (kept hot while a row block is scanned).
    pub cent_tile: usize,
}

impl ResolvedKernel {
    /// Replace the heuristic tile shape with a tuned choice, clamped to
    /// legal bounds (`k` caps the centroid tile).
    pub fn with_tiles(mut self, row_tile: usize, cent_tile: usize, k: usize) -> Self {
        self.row_tile = row_tile.clamp(4, 4096);
        self.cent_tile = cent_tile.clamp(1, k.max(1));
        self
    }
}

/// Below this many multiply-adds per row (`k·d`), staging a tile costs more
/// than it saves and `Auto` falls back to the scalar path.
pub const SCALAR_CUTOFF: usize = 64;

/// At and above this many multiply-adds per row (`k·d`), the blocked-GEMM
/// norm-trick path wins over the exact tiled scan and `Auto` selects it —
/// but only where the ≤ 1e-9 band is legal (no MTI bounds in play).
pub const GEMM_CUTOFF: usize = 2048;

/// L1 budget (bytes) each of the centroid tile and the row tile should fit
/// in — half a typical 32 KB L1d apiece.
const TILE_BYTES: usize = 16 * 1024;

impl KernelKind {
    /// Resolve the requested kernel for a `(k, d)` problem. `pruning`
    /// downgrades the approximate paths (`Fma`, `NormTrick`, `Gemm`) to
    /// `Tiled`: the MTI clauses compare *upper bounds* against exact
    /// thresholds, and a fused or norm-trick distance can land a hair
    /// below the true distance, silently invalidating Clause 1.
    pub fn resolve(self, k: usize, d: usize, pruning: bool) -> ResolvedKernel {
        let row_bytes = (d.max(1)) * 8;
        let row_tile = (TILE_BYTES / row_bytes).clamp(8, 128);
        let cent_tile = (TILE_BYTES / row_bytes).max(4).min(k.max(1));
        let exact_or = |kind| if pruning { ResolvedKind::Tiled } else { kind };
        let kind = match self {
            KernelKind::Scalar => ResolvedKind::Scalar,
            KernelKind::Tiled => ResolvedKind::Tiled,
            KernelKind::Fma => exact_or(ResolvedKind::Fma),
            KernelKind::NormTrick => exact_or(ResolvedKind::NormTrick),
            KernelKind::Gemm => exact_or(ResolvedKind::Gemm),
            KernelKind::Auto => {
                if k * d <= SCALAR_CUTOFF {
                    ResolvedKind::Scalar
                } else if !pruning && k * d >= GEMM_CUTOFF {
                    ResolvedKind::Gemm
                } else {
                    ResolvedKind::Tiled
                }
            }
        };
        ResolvedKernel { kind, row_tile, cent_tile }
    }
}

/// Per-worker reusable kernel scratch. Allocated once per worker before the
/// first iteration; every buffer is grow-only, so steady-state iterations
/// never touch the heap.
#[derive(Debug)]
pub struct KernelScratch {
    /// Row staging area (`row_tile × d`, contiguous).
    pub data: Vec<f64>,
    /// Per-row best centroid index for the current block.
    pub best: Vec<u32>,
    /// Per-row best *distance* (already square-rooted) for the block.
    pub best_dist: Vec<f64>,
    /// Per-row contribution weight for the block (generic algorithm path).
    pub weights: Vec<f64>,
    /// Row ids staged in `data`, in staging order (generic algorithm path,
    /// where subsampling can make a staged block non-contiguous in row id).
    pub row_ids: Vec<usize>,
}

impl KernelScratch {
    /// Scratch sized for `rk`'s row tile at dimensionality `d`.
    pub fn new(rk: &ResolvedKernel, d: usize) -> Self {
        Self {
            data: vec![0.0; rk.row_tile * d],
            best: Vec::with_capacity(rk.row_tile),
            best_dist: Vec::with_capacity(rk.row_tile),
            weights: Vec::with_capacity(rk.row_tile),
            row_ids: Vec::with_capacity(rk.row_tile),
        }
    }
}

/// `‖c‖²` for every centroid, into `out` (the norm-trick cache).
pub fn centroid_sqnorms(cents: &Centroids, out: &mut [f64]) {
    debug_assert_eq!(out.len(), cents.k());
    for (c, o) in out.iter_mut().enumerate() {
        *o = sqnorm(cents.mean(c));
    }
}

/// `‖v‖²` with the same chunked arithmetic as [`sqdist`] against zero.
#[inline]
pub fn sqnorm(v: &[f64]) -> f64 {
    let mut chunks = v.chunks_exact(4);
    let mut acc = [0.0f64; 4];
    for ch in chunks.by_ref() {
        for i in 0..4 {
            acc[i] += ch[i] * ch[i];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for x in chunks.remainder() {
        sum += x * x;
    }
    sum
}

/// Assign every row of a contiguous `m × d` block to its nearest centroid,
/// resizing `best`/`best_dist` to `m` (grow-only). Dispatches on `rk.kind`;
/// `cnorms` is only read on the norm-trick path and may be empty otherwise.
///
/// When `need_dist` is true, `best_dist` holds the exact (tiled/scalar) or
/// reconstructed (norm-trick) distance per row. When false — the
/// non-pruned engine paths, which only consume indices — the distance
/// finalization pass (square roots, and the norm-trick's per-row
/// `O(d)` norm reconstruction) is skipped and `best_dist` holds kernel-
/// internal scores with unspecified meaning.
#[allow(clippy::too_many_arguments)]
pub fn assign_rows(
    block: &[f64],
    d: usize,
    cents: &Centroids,
    rk: &ResolvedKernel,
    cnorms: &[f64],
    best: &mut Vec<u32>,
    best_dist: &mut Vec<f64>,
    need_dist: bool,
) {
    debug_assert_eq!(block.len() % d.max(1), 0);
    let m = block.len().checked_div(d).unwrap_or(0);
    best.clear();
    best.resize(m, 0);
    best_dist.clear();
    best_dist.resize(m, 0.0);
    if rk.kind == ResolvedKind::Gemm {
        // One call for the whole block: the GEMM path's cache-resident
        // object is the packed centroid panel, not a row tile, and rows
        // stream through it exactly once — re-blocking would only repeat
        // the pack per `row_tile` rows. Per-row results are independent,
        // so this is numerically identical to the blocked dispatch below.
        gemm_tile_scored(block, d, cents, cnorms, rk.cent_tile, best, best_dist);
        if need_dist {
            normtrick_finalize(block, d, best_dist);
        }
        return;
    }
    let mut start = 0usize;
    while start < m {
        let end = (start + rk.row_tile).min(m);
        let sub = &block[start * d..end * d];
        match rk.kind {
            ResolvedKind::Scalar => {
                for (i, row) in sub.chunks_exact(d).enumerate() {
                    let (a, da) = nearest(row, &cents.means, cents.k());
                    best[start + i] = a as u32;
                    best_dist[start + i] = da;
                }
            }
            ResolvedKind::Tiled => assign_tile_scored(
                sub,
                d,
                cents,
                rk.cent_tile,
                &mut best[start..end],
                &mut best_dist[start..end],
            ),
            ResolvedKind::Fma => fma_tile_scored(
                sub,
                d,
                cents,
                rk.cent_tile,
                &mut best[start..end],
                &mut best_dist[start..end],
            ),
            ResolvedKind::NormTrick => normtrick_tile_scored(
                sub,
                d,
                cents,
                cnorms,
                rk.cent_tile,
                &mut best[start..end],
                &mut best_dist[start..end],
            ),
            ResolvedKind::Gemm => gemm_tile_scored(
                sub,
                d,
                cents,
                cnorms,
                rk.cent_tile,
                &mut best[start..end],
                &mut best_dist[start..end],
            ),
        }
        start = end;
    }
    if need_dist {
        match rk.kind {
            ResolvedKind::Scalar => {}
            ResolvedKind::Tiled | ResolvedKind::Fma => {
                for x in best_dist.iter_mut() {
                    *x = x.sqrt();
                }
            }
            ResolvedKind::NormTrick | ResolvedKind::Gemm => normtrick_finalize(block, d, best_dist),
        }
    }
}

/// True when the AVX micro-kernels are usable on this machine (cached by
/// `std`'s feature detection). The baseline x86-64 build targets SSE2,
/// where the per-row scan already saturates the FP ports; the 4-wide AVX
/// micro-kernels — deliberately **without FMA**, which would fuse rounding
/// steps and break bitwise parity — are where the tiled speedup comes from.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx_usable() -> bool {
    std::arch::is_x86_feature_detected!("avx")
}

/// True when the FMA/AVX2 micro-kernels are usable on this machine. The
/// fused paths (`Fma`, `Gemm`) fall back to their un-fused counterparts
/// where this is false, which trivially satisfies their ≤ 1e-9 contract.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn fma_usable() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// True when the 8-wide AVX-512 GEMM micro-kernel is usable. Only the GEMM
/// path widens to 512-bit lanes — it is already inside the ≤ 1e-9 band, so
/// the wider accumulator layout costs nothing contract-wise.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx512_usable() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

/// Non-x86 fallback: the fused micro-kernels are never available.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn fma_usable() -> bool {
    false
}

/// The shared tile-scan skeleton, monomorphized per micro-kernel set.
/// `kern4x2` evaluates four rows against two centroids (sharing the row
/// loads), `kern4` four rows against a leftover centroid, `kern1` one
/// remainder row, and `score` maps the raw kernel output to the minimized
/// quantity (identity for squared distances; `‖c‖² − 2·dot` for the norm
/// trick). Candidates are compared in ascending index order with a strict
/// `<`, and the running best for each 4-row group lives in registers
/// across the whole centroid tile.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile_scan(
    block: &[f64],
    d: usize,
    cents: &Centroids,
    cent_tile: usize,
    best: &mut [u32],
    best_dist: &mut [f64],
    kern4x2: impl Fn(&[&[f64]; 4], &[f64], &[f64]) -> ([f64; 4], [f64; 4]),
    kern4: impl Fn(&[&[f64]; 4], &[f64]) -> [f64; 4],
    kern1: impl Fn(&[f64], &[f64]) -> f64,
    score: impl Fn(usize, f64) -> f64,
) {
    let m = block.len() / d.max(1);
    let k = cents.k();
    debug_assert!(best.len() == m && best_dist.len() == m);
    // best_dist carries the running best score until the caller finalizes.
    best_dist.iter_mut().for_each(|x| *x = f64::INFINITY);
    best.iter_mut().for_each(|x| *x = 0);

    let mut c0 = 0usize;
    while c0 < k {
        let c1 = (c0 + cent_tile).min(k);
        let ctile = &cents.means[c0 * d..c1 * d];
        let ctile_n = c1 - c0;
        // 4-row × 2-centroid micro-kernel: the centroid tile stays hot,
        // every row load is amortized over two centroids and every
        // centroid load over four rows, and eight independent accumulator
        // sets hide the floating-point latency.
        let mut r = 0usize;
        while r + 4 <= m {
            let rows = [
                &block[r * d..(r + 1) * d],
                &block[(r + 1) * d..(r + 2) * d],
                &block[(r + 2) * d..(r + 3) * d],
                &block[(r + 3) * d..(r + 4) * d],
            ];
            let mut bd = [best_dist[r], best_dist[r + 1], best_dist[r + 2], best_dist[r + 3]];
            let mut bi = [best[r], best[r + 1], best[r + 2], best[r + 3]];
            let mut ci = 0usize;
            while ci + 2 <= ctile_n {
                let (s0, s1) = kern4x2(
                    &rows,
                    &ctile[ci * d..(ci + 1) * d],
                    &ctile[(ci + 1) * d..(ci + 2) * d],
                );
                // Candidate ci strictly before ci + 1: ascending order.
                for (i, &si) in s0.iter().enumerate() {
                    let sc = score(c0 + ci, si);
                    if sc < bd[i] {
                        bd[i] = sc;
                        bi[i] = (c0 + ci) as u32;
                    }
                }
                for (i, &si) in s1.iter().enumerate() {
                    let sc = score(c0 + ci + 1, si);
                    if sc < bd[i] {
                        bd[i] = sc;
                        bi[i] = (c0 + ci + 1) as u32;
                    }
                }
                ci += 2;
            }
            while ci < ctile_n {
                let c = c0 + ci;
                let s = kern4(&rows, &ctile[ci * d..(ci + 1) * d]);
                for (i, &si) in s.iter().enumerate() {
                    let sc = score(c, si);
                    if sc < bd[i] {
                        bd[i] = sc;
                        bi[i] = c as u32;
                    }
                }
                ci += 1;
            }
            best_dist[r..r + 4].copy_from_slice(&bd);
            best[r..r + 4].copy_from_slice(&bi);
            r += 4;
        }
        // Remainder rows one at a time, same per-pair arithmetic.
        for i in r..m {
            let row = &block[i * d..(i + 1) * d];
            for (ci, mean) in ctile.chunks_exact(d).enumerate() {
                let c = c0 + ci;
                let sc = score(c, kern1(row, mean));
                if sc < best_dist[i] {
                    best_dist[i] = sc;
                    best[i] = c as u32;
                }
            }
        }
        c0 = c1;
    }
}

/// The tiled primitive: scan one row block (`≤ row_tile` rows, contiguous)
/// against all centroids, one centroid tile at a time. Bitwise identical to
/// calling [`nearest`] per row.
pub fn assign_tile(
    block: &[f64],
    d: usize,
    cents: &Centroids,
    cent_tile: usize,
    best: &mut [u32],
    best_dist: &mut [f64],
) {
    assign_tile_scored(block, d, cents, cent_tile, best, best_dist);
    for x in best_dist.iter_mut() {
        *x = x.sqrt();
    }
}

/// [`assign_tile`]'s scan without the final square-root pass: `best_dist`
/// is left holding the best *squared* distances.
fn assign_tile_scored(
    block: &[f64],
    d: usize,
    cents: &Centroids,
    cent_tile: usize,
    best: &mut [u32],
    best_dist: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if avx_usable() {
        // Safety: AVX support verified at runtime.
        unsafe { x86::assign_tile_avx(block, d, cents, cent_tile, best, best_dist) };
        return;
    }
    tile_scan(
        block,
        d,
        cents,
        cent_tile,
        best,
        best_dist,
        |rows, a, b| (sqdist4(rows, a), sqdist4(rows, b)),
        sqdist4,
        sqdist,
        |_, s| s,
    );
}

/// The `Fma` path: [`assign_tile_scored`] with fused multiply-add
/// micro-kernels where the hardware has them, the bitwise tiled scan
/// otherwise. Fusing drops one rounding step per element, so results sit
/// within the ≤ 1e-9 band of the reference rather than matching it bitwise.
fn fma_tile_scored(
    block: &[f64],
    d: usize,
    cents: &Centroids,
    cent_tile: usize,
    best: &mut [u32],
    best_dist: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if fma_usable() {
        // Safety: FMA + AVX2 support verified at runtime.
        unsafe { x86::assign_tile_fma(block, d, cents, cent_tile, best, best_dist) };
        return;
    }
    assign_tile_scored(block, d, cents, cent_tile, best, best_dist);
}

/// AVX micro-kernels: 4-wide lanes map one-to-one onto [`sqdist`]'s four
/// accumulator lanes, and sub/mul/add stay un-fused, so every pair's
/// arithmetic — and therefore every result bit — matches the portable path.
/// The whole tile scans are compiled with the feature enabled so the
/// micro-kernels inline into them (a `target_feature` function cannot
/// inline into a caller without the feature).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{dot, sqdist, tile_scan, Centroids};

    /// [`super::assign_tile`]'s scan, AVX-enabled.
    ///
    /// # Safety
    /// Caller must have verified AVX support at runtime.
    #[target_feature(enable = "avx")]
    pub unsafe fn assign_tile_avx(
        block: &[f64],
        d: usize,
        cents: &Centroids,
        cent_tile: usize,
        best: &mut [u32],
        best_dist: &mut [f64],
    ) {
        // Safety: closures inherit the enclosing function's target features.
        tile_scan(
            block,
            d,
            cents,
            cent_tile,
            best,
            best_dist,
            |rows, a, b| unsafe { sqdist4x2_avx(rows, a, b) },
            |rows, c| unsafe { sqdist4_avx(rows, c) },
            sqdist,
            |_, s| s,
        );
    }

    /// [`super::assign_tile_normtrick`]'s scan, AVX-enabled.
    ///
    /// # Safety
    /// Caller must have verified AVX support at runtime.
    #[target_feature(enable = "avx")]
    pub unsafe fn normtrick_tile_avx(
        block: &[f64],
        d: usize,
        cents: &Centroids,
        cnorms: &[f64],
        cent_tile: usize,
        best: &mut [u32],
        best_dist: &mut [f64],
    ) {
        tile_scan(
            block,
            d,
            cents,
            cent_tile,
            best,
            best_dist,
            |rows, a, b| unsafe { dot4x2_avx(rows, a, b) },
            |rows, c| unsafe { dot4_avx(rows, c) },
            dot,
            |c, dp| cnorms[c] - 2.0 * dp,
        );
    }

    /// [`super::fma_tile_scored`]'s scan: the exact tiled loop nest with
    /// fused micro-kernels. AVX2 + FMA fuse the multiply and add of every
    /// lane step, dropping one rounding per element — ≤ 1e-9 band, not
    /// bitwise.
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn assign_tile_fma(
        block: &[f64],
        d: usize,
        cents: &Centroids,
        cent_tile: usize,
        best: &mut [u32],
        best_dist: &mut [f64],
    ) {
        // Safety: closures inherit the enclosing function's target features.
        tile_scan(
            block,
            d,
            cents,
            cent_tile,
            best,
            best_dist,
            |rows, a, b| unsafe { sqdist4x2_fma(rows, a, b) },
            |rows, c| unsafe { sqdist4_fma(rows, c) },
            sqdist,
            |_, s| s,
        );
    }

    std::thread_local! {
        /// Grow-only pack scratch for the fused GEMM path: the centroid
        /// panel transposed to `d × k_padded` plus the padded norm vector.
        /// Thread-local so steady-state iterations never allocate.
        static GEMM_PACK: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
            const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
    }

    /// [`super::gemm_tile_scored`]'s fused path: a register-blocked GEMM.
    ///
    /// The row-major centroid matrix is repacked **transposed** (`d ×
    /// k_padded`, `k` rounded up to 8 with `+∞`-normed padding that can
    /// never win a strict-`<` race), so that for a fixed dimension `j` the
    /// values of eight consecutive centroids sit in two contiguous vector
    /// lanes. The micro-kernel then evaluates **four rows × eight
    /// centroids** per pass: one broadcast per row element, two packed
    /// loads per dimension, eight independent FMA accumulators — ~16
    /// double FLOPs per cycle on AVX2 ports, with every accumulator
    /// staying in a register across the whole `d` loop (no score-panel
    /// round-trip, any `d`). The winner pass scores `‖c‖² − 2·dot` in
    /// ascending candidate order with a strict `<`, same tie discipline as
    /// every other path; sequential-over-`j` accumulation re-orders the
    /// sum vs the 4-lane reference dot, which the ≤ 1e-9 band absorbs.
    ///
    /// The pack costs `k·d` scalar writes per row block — under 1% of the
    /// `m·k·d` multiply-adds it unlocks for any block ≥ the row tile.
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_tile_fma(
        block: &[f64],
        d: usize,
        cents: &Centroids,
        cnorms: &[f64],
        _cent_tile: usize,
        best: &mut [u32],
        best_dist: &mut [f64],
    ) {
        use std::arch::x86_64::*;
        let m = block.len() / d.max(1);
        let k = cents.k();
        let kp = (k + 7) & !7;
        debug_assert!(best.len() == m && best_dist.len() == m);
        GEMM_PACK.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (packed, cn) = &mut *scratch;
            // Grow-only scratch: every slot below is overwritten — real
            // columns by the transpose, pad columns explicitly — so no
            // full clear is needed between calls (or shapes).
            if packed.len() < kp * d {
                packed.resize(kp * d, 0.0);
            }
            if cn.len() < kp {
                cn.resize(kp, f64::INFINITY);
            }
            cn[..k].copy_from_slice(cnorms);
            cn[k..kp].iter_mut().for_each(|x| *x = f64::INFINITY);
            for (c, mean) in cents.means.chunks_exact(d.max(1)).enumerate() {
                for (j, &v) in mean.iter().enumerate() {
                    packed[j * kp + c] = v;
                }
            }
            for j in 0..d {
                packed[j * kp + k..j * kp + kp].iter_mut().for_each(|x| *x = 0.0);
            }
            let pk = packed.as_ptr();
            let mut r = 0usize;
            while r + 4 <= m {
                let rows = [
                    block.as_ptr().add(r * d),
                    block.as_ptr().add((r + 1) * d),
                    block.as_ptr().add((r + 2) * d),
                    block.as_ptr().add((r + 3) * d),
                ];
                let mut bd = [f64::INFINITY; 4];
                let mut bi = [0u32; 4];
                let mut c8 = 0usize;
                while c8 < kp {
                    let pb = pk.add(c8);
                    let mut acc = [_mm256_setzero_pd(); 8];
                    for j in 0..d {
                        let b0 = _mm256_loadu_pd(pb.add(j * kp));
                        let b1 = _mm256_loadu_pd(pb.add(j * kp + 4));
                        for (rr, row) in rows.iter().enumerate() {
                            let a = _mm256_set1_pd(*row.add(j));
                            acc[2 * rr] = _mm256_fmadd_pd(a, b0, acc[2 * rr]);
                            acc[2 * rr + 1] = _mm256_fmadd_pd(a, b1, acc[2 * rr + 1]);
                        }
                    }
                    for rr in 0..4 {
                        let mut dp = [0.0f64; 8];
                        _mm256_storeu_pd(dp.as_mut_ptr(), acc[2 * rr]);
                        _mm256_storeu_pd(dp.as_mut_ptr().add(4), acc[2 * rr + 1]);
                        for (ci, &dpv) in dp.iter().enumerate() {
                            let sc = cn[c8 + ci] - 2.0 * dpv;
                            if sc < bd[rr] {
                                bd[rr] = sc;
                                bi[rr] = (c8 + ci) as u32;
                            }
                        }
                    }
                    c8 += 8;
                }
                best_dist[r..r + 4].copy_from_slice(&bd);
                best[r..r + 4].copy_from_slice(&bi);
                r += 4;
            }
            // Remainder rows: the same packed panel, one row at a time.
            for i in r..m {
                let row = block.as_ptr().add(i * d);
                let mut bd = f64::INFINITY;
                let mut bi = 0u32;
                let mut c8 = 0usize;
                while c8 < kp {
                    let pb = pk.add(c8);
                    let mut a0 = _mm256_setzero_pd();
                    let mut a1 = _mm256_setzero_pd();
                    for j in 0..d {
                        let a = _mm256_set1_pd(*row.add(j));
                        a0 = _mm256_fmadd_pd(a, _mm256_loadu_pd(pb.add(j * kp)), a0);
                        a1 = _mm256_fmadd_pd(a, _mm256_loadu_pd(pb.add(j * kp + 4)), a1);
                    }
                    let mut dp = [0.0f64; 8];
                    _mm256_storeu_pd(dp.as_mut_ptr(), a0);
                    _mm256_storeu_pd(dp.as_mut_ptr().add(4), a1);
                    for (ci, &dpv) in dp.iter().enumerate() {
                        let sc = cn[c8 + ci] - 2.0 * dpv;
                        if sc < bd {
                            bd = sc;
                            bi = (c8 + ci) as u32;
                        }
                    }
                    c8 += 8;
                }
                best_dist[i] = bd;
                best[i] = bi;
            }
        });
    }

    /// The AVX-512 variant of [`gemm_tile_fma`]: the same packed-transpose
    /// layout (`k` padded to 16) with a **four rows × sixteen centroids**
    /// micro-kernel — two 8-wide panel loads and four broadcasts feed eight
    /// independent zmm FMA accumulators per dimension, saturating both
    /// 512-bit FMA ports where the hardware has them (~32 double FLOPs per
    /// cycle).
    ///
    /// The winner scan is vectorized too: scores `‖c‖² − 2·dot` come from
    /// one `fnmadd` per lane (the `2·dot` scale is exact, so each score
    /// rounds exactly like the scalar formula), and a masked strict-`<`
    /// blend keeps per-lane champions with candidates visited in ascending
    /// index order. The final 8-lane reduction prefers strictly smaller
    /// scores and breaks exact ties toward the lower index — precisely the
    /// scalar first-minimum discipline. Same ≤ 1e-9 band as the 256-bit
    /// path.
    ///
    /// # Safety
    /// Caller must have verified AVX-512F support at runtime.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gemm_tile_avx512(
        block: &[f64],
        d: usize,
        cents: &Centroids,
        cnorms: &[f64],
        _cent_tile: usize,
        best: &mut [u32],
        best_dist: &mut [f64],
    ) {
        use std::arch::x86_64::*;
        let m = block.len() / d.max(1);
        let k = cents.k();
        let kp = (k + 15) & !15;
        debug_assert!(best.len() == m && best_dist.len() == m);
        // Reduce one row's 8-lane champions (scores + indices) to the
        // scalar first-minimum: strictly smaller score wins, an exactly
        // equal score falls back to the lower candidate index.
        let reduce = |vs: __m512d, vi: __m512i| -> (f64, u32) {
            let mut sv = [0.0f64; 8];
            let mut iv = [0i64; 8];
            // Safety: the enclosing function already verified AVX-512F.
            unsafe {
                _mm512_storeu_pd(sv.as_mut_ptr(), vs);
                _mm512_storeu_si512(iv.as_mut_ptr().cast(), vi);
            }
            let (mut bd, mut bi) = (f64::INFINITY, u32::MAX);
            for l in 0..8 {
                if sv[l] < bd || (sv[l] == bd && (iv[l] as u32) < bi) {
                    bd = sv[l];
                    bi = iv[l] as u32;
                }
            }
            (bd, bi)
        };
        GEMM_PACK.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (packed, cn) = &mut *scratch;
            // Grow-only scratch: every slot below is overwritten — real
            // columns by the transpose, pad columns explicitly — so no
            // full clear is needed between calls (or shapes).
            if packed.len() < kp * d {
                packed.resize(kp * d, 0.0);
            }
            if cn.len() < kp {
                cn.resize(kp, f64::INFINITY);
            }
            cn[..k].copy_from_slice(cnorms);
            cn[k..kp].iter_mut().for_each(|x| *x = f64::INFINITY);
            for (c, mean) in cents.means.chunks_exact(d.max(1)).enumerate() {
                for (j, &v) in mean.iter().enumerate() {
                    packed[j * kp + c] = v;
                }
            }
            for j in 0..d {
                packed[j * kp + k..j * kp + kp].iter_mut().for_each(|x| *x = 0.0);
            }
            let pk = packed.as_ptr();
            let pcn = cn.as_ptr();
            let iota = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
            let two = _mm512_set1_pd(2.0);
            let inf = _mm512_set1_pd(f64::INFINITY);
            let mut r = 0usize;
            while r + 4 <= m {
                let rows = [
                    block.as_ptr().add(r * d),
                    block.as_ptr().add((r + 1) * d),
                    block.as_ptr().add((r + 2) * d),
                    block.as_ptr().add((r + 3) * d),
                ];
                let mut vs = [inf; 4];
                let mut vi = [_mm512_setzero_si512(); 4];
                let mut c16 = 0usize;
                while c16 < kp {
                    let pb = pk.add(c16);
                    let mut acc = [_mm512_setzero_pd(); 8];
                    for j in 0..d {
                        let b0 = _mm512_loadu_pd(pb.add(j * kp));
                        let b1 = _mm512_loadu_pd(pb.add(j * kp + 8));
                        for (rr, row) in rows.iter().enumerate() {
                            let a = _mm512_set1_pd(*row.add(j));
                            acc[2 * rr] = _mm512_fmadd_pd(a, b0, acc[2 * rr]);
                            acc[2 * rr + 1] = _mm512_fmadd_pd(a, b1, acc[2 * rr + 1]);
                        }
                    }
                    let cn0 = _mm512_loadu_pd(pcn.add(c16));
                    let cn1 = _mm512_loadu_pd(pcn.add(c16 + 8));
                    let idx0 = _mm512_add_epi64(iota, _mm512_set1_epi64(c16 as i64));
                    let idx1 = _mm512_add_epi64(iota, _mm512_set1_epi64((c16 + 8) as i64));
                    for rr in 0..4 {
                        let s0 = _mm512_fnmadd_pd(two, acc[2 * rr], cn0);
                        let m0 = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(s0, vs[rr]);
                        vs[rr] = _mm512_mask_blend_pd(m0, vs[rr], s0);
                        vi[rr] = _mm512_mask_blend_epi64(m0, vi[rr], idx0);
                        let s1 = _mm512_fnmadd_pd(two, acc[2 * rr + 1], cn1);
                        let m1 = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(s1, vs[rr]);
                        vs[rr] = _mm512_mask_blend_pd(m1, vs[rr], s1);
                        vi[rr] = _mm512_mask_blend_epi64(m1, vi[rr], idx1);
                    }
                    c16 += 16;
                }
                for rr in 0..4 {
                    let (bd, bi) = reduce(vs[rr], vi[rr]);
                    best_dist[r + rr] = bd;
                    best[r + rr] = bi;
                }
                r += 4;
            }
            // Remainder rows: the same packed panel, one row at a time.
            for i in r..m {
                let row = block.as_ptr().add(i * d);
                let mut vs = inf;
                let mut vi = _mm512_setzero_si512();
                let mut c16 = 0usize;
                while c16 < kp {
                    let pb = pk.add(c16);
                    let mut a0 = _mm512_setzero_pd();
                    let mut a1 = _mm512_setzero_pd();
                    for j in 0..d {
                        let a = _mm512_set1_pd(*row.add(j));
                        a0 = _mm512_fmadd_pd(a, _mm512_loadu_pd(pb.add(j * kp)), a0);
                        a1 = _mm512_fmadd_pd(a, _mm512_loadu_pd(pb.add(j * kp + 8)), a1);
                    }
                    let s0 = _mm512_fnmadd_pd(two, a0, _mm512_loadu_pd(pcn.add(c16)));
                    let idx0 = _mm512_add_epi64(iota, _mm512_set1_epi64(c16 as i64));
                    let m0 = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(s0, vs);
                    vs = _mm512_mask_blend_pd(m0, vs, s0);
                    vi = _mm512_mask_blend_epi64(m0, vi, idx0);
                    let s1 = _mm512_fnmadd_pd(two, a1, _mm512_loadu_pd(pcn.add(c16 + 8)));
                    let idx1 = _mm512_add_epi64(iota, _mm512_set1_epi64((c16 + 8) as i64));
                    let m1 = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(s1, vs);
                    vs = _mm512_mask_blend_pd(m1, vs, s1);
                    vi = _mm512_mask_blend_epi64(m1, vi, idx1);
                    c16 += 16;
                }
                let (bd, bi) = reduce(vs, vi);
                best_dist[i] = bd;
                best[i] = bi;
            }
        });
    }

    /// Squared distances of four rows to two centroids with fused
    /// multiply-adds (`vfmadd`), sharing every row load.
    ///
    /// # Safety
    /// As `sqdist4x2_avx`: only reachable from the feature-gated scans.
    #[inline(always)]
    unsafe fn sqdist4x2_fma(rows: &[&[f64]; 4], c0: &[f64], c1: &[f64]) -> ([f64; 4], [f64; 4]) {
        use std::arch::x86_64::*;
        let d = c0.len();
        let full = d - d % 4;
        let mut acc0 = [_mm256_setzero_pd(); 4];
        let mut acc1 = [_mm256_setzero_pd(); 4];
        let mut j = 0usize;
        while j < full {
            let cv0 = _mm256_loadu_pd(c0.as_ptr().add(j));
            let cv1 = _mm256_loadu_pd(c1.as_ptr().add(j));
            for (r, row) in rows.iter().enumerate() {
                let rv = _mm256_loadu_pd(row.as_ptr().add(j));
                let d0 = _mm256_sub_pd(rv, cv0);
                acc0[r] = _mm256_fmadd_pd(d0, d0, acc0[r]);
                let d1 = _mm256_sub_pd(rv, cv1);
                acc1[r] = _mm256_fmadd_pd(d1, d1, acc1[r]);
            }
            j += 4;
        }
        let mut out0 = [0.0f64; 4];
        let mut out1 = [0.0f64; 4];
        for (r, row) in rows.iter().enumerate() {
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc0[r]);
            let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
            for jj in full..d {
                let diff = row[jj] - c0[jj];
                sum += diff * diff;
            }
            out0[r] = sum;
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc1[r]);
            let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
            for jj in full..d {
                let diff = row[jj] - c1[jj];
                sum += diff * diff;
            }
            out1[r] = sum;
        }
        (out0, out1)
    }

    /// Squared distances of four rows to one centroid, fused.
    ///
    /// # Safety
    /// As `sqdist4x2_avx`: only reachable from the feature-gated scans.
    #[inline(always)]
    unsafe fn sqdist4_fma(rows: &[&[f64]; 4], c: &[f64]) -> [f64; 4] {
        use std::arch::x86_64::*;
        let d = c.len();
        let full = d - d % 4;
        let mut acc = [_mm256_setzero_pd(); 4];
        let mut j = 0usize;
        while j < full {
            let cv = _mm256_loadu_pd(c.as_ptr().add(j));
            for (r, row) in rows.iter().enumerate() {
                let rv = _mm256_loadu_pd(row.as_ptr().add(j));
                let diff = _mm256_sub_pd(rv, cv);
                acc[r] = _mm256_fmadd_pd(diff, diff, acc[r]);
            }
            j += 4;
        }
        let mut out = [0.0f64; 4];
        for (r, row) in rows.iter().enumerate() {
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc[r]);
            let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
            for jj in full..d {
                let diff = row[jj] - c[jj];
                sum += diff * diff;
            }
            out[r] = sum;
        }
        out
    }

    /// Squared distances of four rows to two centroids, sharing every row
    /// load (AVX lanes; each pair's arithmetic matches `sqdist` exactly).
    ///
    /// `#[inline(always)]` rather than `#[target_feature]`: the two are
    /// mutually exclusive, and a non-inlined call per two centroids (with
    /// its by-memory tuple return) costs ~30% of the kernel. Inlining into
    /// the `target_feature` scans above compiles the intrinsics in an
    /// AVX-enabled context.
    ///
    /// # Safety
    /// Must only execute under AVX — guaranteed by being called only from
    /// the feature-gated scans above.
    #[inline(always)]
    unsafe fn sqdist4x2_avx(rows: &[&[f64]; 4], c0: &[f64], c1: &[f64]) -> ([f64; 4], [f64; 4]) {
        use std::arch::x86_64::*;
        let d = c0.len();
        let full = d - d % 4;
        let mut acc0 = [_mm256_setzero_pd(); 4];
        let mut acc1 = [_mm256_setzero_pd(); 4];
        let mut j = 0usize;
        while j < full {
            let cv0 = _mm256_loadu_pd(c0.as_ptr().add(j));
            let cv1 = _mm256_loadu_pd(c1.as_ptr().add(j));
            for (r, row) in rows.iter().enumerate() {
                let rv = _mm256_loadu_pd(row.as_ptr().add(j));
                let d0 = _mm256_sub_pd(rv, cv0);
                acc0[r] = _mm256_add_pd(acc0[r], _mm256_mul_pd(d0, d0));
                let d1 = _mm256_sub_pd(rv, cv1);
                acc1[r] = _mm256_add_pd(acc1[r], _mm256_mul_pd(d1, d1));
            }
            j += 4;
        }
        let mut out0 = [0.0f64; 4];
        let mut out1 = [0.0f64; 4];
        for (r, row) in rows.iter().enumerate() {
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc0[r]);
            let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
            for jj in full..d {
                let diff = row[jj] - c0[jj];
                sum += diff * diff;
            }
            out0[r] = sum;
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc1[r]);
            let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
            for jj in full..d {
                let diff = row[jj] - c1[jj];
                sum += diff * diff;
            }
            out1[r] = sum;
        }
        (out0, out1)
    }

    /// Dot products of four rows with two centroids, sharing row loads.
    ///
    /// # Safety
    /// As `sqdist4x2_avx`: only reachable from the feature-gated scans.
    #[inline(always)]
    unsafe fn dot4x2_avx(rows: &[&[f64]; 4], c0: &[f64], c1: &[f64]) -> ([f64; 4], [f64; 4]) {
        use std::arch::x86_64::*;
        let d = c0.len();
        let full = d - d % 4;
        let mut acc0 = [_mm256_setzero_pd(); 4];
        let mut acc1 = [_mm256_setzero_pd(); 4];
        let mut j = 0usize;
        while j < full {
            let cv0 = _mm256_loadu_pd(c0.as_ptr().add(j));
            let cv1 = _mm256_loadu_pd(c1.as_ptr().add(j));
            for (r, row) in rows.iter().enumerate() {
                let rv = _mm256_loadu_pd(row.as_ptr().add(j));
                acc0[r] = _mm256_add_pd(acc0[r], _mm256_mul_pd(rv, cv0));
                acc1[r] = _mm256_add_pd(acc1[r], _mm256_mul_pd(rv, cv1));
            }
            j += 4;
        }
        let mut out0 = [0.0f64; 4];
        let mut out1 = [0.0f64; 4];
        for (r, row) in rows.iter().enumerate() {
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc0[r]);
            let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
            for jj in full..d {
                sum += row[jj] * c0[jj];
            }
            out0[r] = sum;
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc1[r]);
            let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
            for jj in full..d {
                sum += row[jj] * c1[jj];
            }
            out1[r] = sum;
        }
        (out0, out1)
    }

    /// Squared distances of four rows to one centroid (AVX lanes).
    ///
    /// # Safety
    /// As `sqdist4x2_avx`: only reachable from the feature-gated scans.
    #[inline(always)]
    unsafe fn sqdist4_avx(rows: &[&[f64]; 4], c: &[f64]) -> [f64; 4] {
        use std::arch::x86_64::*;
        let d = c.len();
        let full = d - d % 4;
        let mut acc = [_mm256_setzero_pd(); 4];
        let mut j = 0usize;
        while j < full {
            let cv = _mm256_loadu_pd(c.as_ptr().add(j));
            for (r, row) in rows.iter().enumerate() {
                let rv = _mm256_loadu_pd(row.as_ptr().add(j));
                let diff = _mm256_sub_pd(rv, cv);
                acc[r] = _mm256_add_pd(acc[r], _mm256_mul_pd(diff, diff));
            }
            j += 4;
        }
        let mut out = [0.0f64; 4];
        for (r, row) in rows.iter().enumerate() {
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc[r]);
            // Same summation order as `sqdist`: ((l0 + l1) + l2) + l3.
            let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
            for jj in full..d {
                let diff = row[jj] - c[jj];
                sum += diff * diff;
            }
            out[r] = sum;
        }
        out
    }

    /// Dot products of four rows with one centroid (AVX lanes).
    ///
    /// # Safety
    /// As `sqdist4x2_avx`: only reachable from the feature-gated scans.
    #[inline(always)]
    unsafe fn dot4_avx(rows: &[&[f64]; 4], c: &[f64]) -> [f64; 4] {
        use std::arch::x86_64::*;
        let d = c.len();
        let full = d - d % 4;
        let mut acc = [_mm256_setzero_pd(); 4];
        let mut j = 0usize;
        while j < full {
            let cv = _mm256_loadu_pd(c.as_ptr().add(j));
            for (r, row) in rows.iter().enumerate() {
                let rv = _mm256_loadu_pd(row.as_ptr().add(j));
                acc[r] = _mm256_add_pd(acc[r], _mm256_mul_pd(rv, cv));
            }
            j += 4;
        }
        let mut out = [0.0f64; 4];
        for (r, row) in rows.iter().enumerate() {
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc[r]);
            let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
            for jj in full..d {
                sum += row[jj] * c[jj];
            }
            out[r] = sum;
        }
        out
    }
}

/// Squared distances of four rows to one centroid, each pair computed with
/// exactly [`sqdist`]'s chunking and summation order.
#[inline]
fn sqdist4(rows: &[&[f64]; 4], c: &[f64]) -> [f64; 4] {
    let d = c.len();
    let full = d - d % 4;
    let mut acc = [[0.0f64; 4]; 4];
    let mut j = 0usize;
    while j < full {
        let cc = &c[j..j + 4];
        for (r, row) in rows.iter().enumerate() {
            let rr = &row[j..j + 4];
            for l in 0..4 {
                let diff = rr[l] - cc[l];
                acc[r][l] += diff * diff;
            }
        }
        j += 4;
    }
    let mut out = [0.0f64; 4];
    for (r, row) in rows.iter().enumerate() {
        let mut sum = acc[r][0] + acc[r][1] + acc[r][2] + acc[r][3];
        for jj in full..d {
            let diff = row[jj] - c[jj];
            sum += diff * diff;
        }
        out[r] = sum;
    }
    out
}

/// The norm-trick primitive: per row, minimize `‖c‖² − 2·x·c` (adding `‖x‖²`
/// is row-constant and cannot change the argmin), then reconstruct the
/// distance as `√max(‖x‖² + score, 0)`. Half the arithmetic of the exact
/// kernel; accurate to ≤ 1e-9 relative on non-degenerate data.
pub fn assign_tile_normtrick(
    block: &[f64],
    d: usize,
    cents: &Centroids,
    cnorms: &[f64],
    cent_tile: usize,
    best: &mut [u32],
    best_dist: &mut [f64],
) {
    normtrick_tile_scored(block, d, cents, cnorms, cent_tile, best, best_dist);
    normtrick_finalize(block, d, best_dist);
}

/// [`assign_tile_normtrick`]'s scan without the distance reconstruction:
/// `best_dist` is left holding the best scores `‖c‖² − 2·x·c`.
fn normtrick_tile_scored(
    block: &[f64],
    d: usize,
    cents: &Centroids,
    cnorms: &[f64],
    cent_tile: usize,
    best: &mut [u32],
    best_dist: &mut [f64],
) {
    debug_assert_eq!(cnorms.len(), cents.k());
    #[cfg(target_arch = "x86_64")]
    if avx_usable() {
        // Safety: AVX support verified at runtime.
        unsafe { x86::normtrick_tile_avx(block, d, cents, cnorms, cent_tile, best, best_dist) };
        return;
    }
    tile_scan(
        block,
        d,
        cents,
        cent_tile,
        best,
        best_dist,
        |rows, a, b| (dot4(rows, a), dot4(rows, b)),
        dot4,
        dot,
        |c, dp| cnorms[c] - 2.0 * dp,
    );
}

/// Reconstruct distances from the winning norm-trick scores.
fn normtrick_finalize(block: &[f64], d: usize, best_dist: &mut [f64]) {
    for (i, x) in best_dist.iter_mut().enumerate() {
        let row = &block[i * d..(i + 1) * d];
        *x = (sqnorm(row) + *x).max(0.0).sqrt();
    }
}

/// Dimensions per GEMM d-block: at 256 elements a 64-centroid panel slice
/// is 128 KB — L2-resident while every row of the block streams past it.
const GEMM_DBLOCK: usize = 256;

std::thread_local! {
    /// Grow-only dot-product panel for the GEMM path (`row_tile ×
    /// cent_tile`). Thread-local so [`assign_rows`]' signature stays
    /// scratch-free and steady-state iterations never allocate.
    static GEMM_PANEL: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The blocked-GEMM primitive: treat the norm-trick assignment as
/// `‖x‖² − 2XCᵀ + ‖c‖²` and compute the `XCᵀ` panel with a k-panel ×
/// row-panel × d-block loop nest. The centroid panel's d-slice stays
/// cache-resident across the whole row panel, dot products accumulate in
/// a `row × cent_tile` score panel, and the winner pass scores
/// `‖c‖² − 2·dot` in ascending candidate order with a strict `<` —
/// the same tie discipline as every other path. `best_dist` is left
/// holding the winning scores (the caller finalizes like the norm trick).
fn gemm_tile_scored(
    block: &[f64],
    d: usize,
    cents: &Centroids,
    cnorms: &[f64],
    cent_tile: usize,
    best: &mut [u32],
    best_dist: &mut [f64],
) {
    debug_assert_eq!(cnorms.len(), cents.k());
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_usable() {
            // Safety: AVX-512F support verified at runtime.
            unsafe { x86::gemm_tile_avx512(block, d, cents, cnorms, cent_tile, best, best_dist) };
            return;
        }
        if fma_usable() {
            // Safety: FMA + AVX2 support verified at runtime.
            unsafe { x86::gemm_tile_fma(block, d, cents, cnorms, cent_tile, best, best_dist) };
            return;
        }
    }
    if d <= GEMM_DBLOCK {
        // Single d-block: skip the panel round-trip and score inline (see
        // the fused variant for the argument; bitwise equal to the panel
        // path it shortcuts).
        tile_scan(
            block,
            d,
            cents,
            cent_tile,
            best,
            best_dist,
            |rows, a, b| (dot4(rows, a), dot4(rows, b)),
            dot4,
            dot,
            |c, dp| cnorms[c] - 2.0 * dp,
        );
        return;
    }
    gemm_scan(
        block,
        d,
        cents,
        cnorms,
        cent_tile,
        best,
        best_dist,
        |rows, a, b| (dot4(rows, a), dot4(rows, b)),
        dot4,
        dot,
    );
}

/// The shared GEMM loop nest, monomorphized per micro-kernel set. The
/// kernels receive *d-slices* of rows and centroids and return partial dot
/// products, which accumulate into the panel across d-blocks.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_scan(
    block: &[f64],
    d: usize,
    cents: &Centroids,
    cnorms: &[f64],
    cent_tile: usize,
    best: &mut [u32],
    best_dist: &mut [f64],
    kern4x2: impl Fn(&[&[f64]; 4], &[f64], &[f64]) -> ([f64; 4], [f64; 4]),
    kern4: impl Fn(&[&[f64]; 4], &[f64]) -> [f64; 4],
    kern1: impl Fn(&[f64], &[f64]) -> f64,
) {
    let m = block.len() / d.max(1);
    let k = cents.k();
    debug_assert!(best.len() == m && best_dist.len() == m);
    best_dist.iter_mut().for_each(|x| *x = f64::INFINITY);
    best.iter_mut().for_each(|x| *x = 0);
    let tile = cent_tile.max(1);
    GEMM_PANEL.with(|cell| {
        let mut panel = cell.borrow_mut();
        let width = tile.min(k.max(1));
        if panel.len() < m * width {
            panel.resize(m * width, 0.0);
        }
        let mut c0 = 0usize;
        while c0 < k {
            let c1 = (c0 + tile).min(k);
            let ctn = c1 - c0;
            panel[..m * ctn].iter_mut().for_each(|x| *x = 0.0);
            // d-block loop: the centroid panel slice stays hot while the
            // whole row panel streams past it once per block.
            let mut j0 = 0usize;
            while j0 < d {
                let j1 = (j0 + GEMM_DBLOCK).min(d);
                let mut r = 0usize;
                while r + 4 <= m {
                    let rows = [
                        &block[r * d + j0..r * d + j1],
                        &block[(r + 1) * d + j0..(r + 1) * d + j1],
                        &block[(r + 2) * d + j0..(r + 2) * d + j1],
                        &block[(r + 3) * d + j0..(r + 3) * d + j1],
                    ];
                    let mut ci = 0usize;
                    while ci + 2 <= ctn {
                        let ca = &cents.means[(c0 + ci) * d + j0..(c0 + ci) * d + j1];
                        let cb = &cents.means[(c0 + ci + 1) * d + j0..(c0 + ci + 1) * d + j1];
                        let (s0, s1) = kern4x2(&rows, ca, cb);
                        for i in 0..4 {
                            panel[(r + i) * ctn + ci] += s0[i];
                            panel[(r + i) * ctn + ci + 1] += s1[i];
                        }
                        ci += 2;
                    }
                    while ci < ctn {
                        let cc = &cents.means[(c0 + ci) * d + j0..(c0 + ci) * d + j1];
                        let s = kern4(&rows, cc);
                        for i in 0..4 {
                            panel[(r + i) * ctn + ci] += s[i];
                        }
                        ci += 1;
                    }
                    r += 4;
                }
                for i in r..m {
                    let row = &block[i * d + j0..i * d + j1];
                    for ci in 0..ctn {
                        let cc = &cents.means[(c0 + ci) * d + j0..(c0 + ci) * d + j1];
                        panel[i * ctn + ci] += kern1(row, cc);
                    }
                }
                j0 = j1;
            }
            // Winner pass over the finished panel, ascending candidates.
            for i in 0..m {
                for ci in 0..ctn {
                    let c = c0 + ci;
                    let sc = cnorms[c] - 2.0 * panel[i * ctn + ci];
                    if sc < best_dist[i] {
                        best_dist[i] = sc;
                        best[i] = c as u32;
                    }
                }
            }
            c0 = c1;
        }
    });
}

/// Chunked dot product (same shape as [`sqdist`] for vectorization).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let mut acc = [0.0f64; 4];
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..4 {
            acc[i] += x[i] * y[i];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += x * y;
    }
    sum
}

/// Dot products of four rows with one centroid.
#[inline]
fn dot4(rows: &[&[f64]; 4], c: &[f64]) -> [f64; 4] {
    let d = c.len();
    let full = d - d % 4;
    let mut acc = [[0.0f64; 4]; 4];
    let mut j = 0usize;
    while j < full {
        let cc = &c[j..j + 4];
        for (r, row) in rows.iter().enumerate() {
            let rr = &row[j..j + 4];
            for l in 0..4 {
                acc[r][l] += rr[l] * cc[l];
            }
        }
        j += 4;
    }
    let mut out = [0.0f64; 4];
    for (r, row) in rows.iter().enumerate() {
        let mut sum = acc[r][0] + acc[r][1] + acc[r][2] + acc[r][3];
        for jj in full..d {
            sum += row[jj] * c[jj];
        }
        out[r] = sum;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_case(m: usize, k: usize, d: usize, seed: u64) -> (Vec<f64>, Centroids) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let block: Vec<f64> = (0..m * d).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut cents = Centroids::zeros(k, d);
        for x in cents.means.iter_mut() {
            *x = rng.gen_range(-5.0..5.0);
        }
        (block, cents)
    }

    fn scalar_reference(block: &[f64], d: usize, cents: &Centroids) -> (Vec<u32>, Vec<f64>) {
        block
            .chunks_exact(d)
            .map(|row| {
                let (a, da) = nearest(row, &cents.means, cents.k());
                (a as u32, da)
            })
            .unzip()
    }

    #[test]
    fn tiled_is_bitwise_identical_to_scalar() {
        // Shapes straddle the 4-row micro-kernel, tile boundaries and
        // d % 4 != 0 remainders.
        for (m, k, d, seed) in
            [(1, 1, 3, 1u64), (3, 5, 7, 2), (4, 8, 8, 3), (67, 13, 6, 4), (130, 40, 9, 5)]
        {
            let (block, cents) = random_case(m, k, d, seed);
            let rk = KernelKind::Tiled.resolve(k, d, false);
            let (mut best, mut dist) = (Vec::new(), Vec::new());
            assign_rows(&block, d, &cents, &rk, &[], &mut best, &mut dist, true);
            let (rbest, rdist) = scalar_reference(&block, d, &cents);
            assert_eq!(best, rbest, "case {m}x{k}x{d}");
            assert_eq!(
                dist.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                rdist.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "distances must match bitwise in case {m}x{k}x{d}"
            );
        }
    }

    #[test]
    fn tiny_cent_tile_still_exact() {
        let (block, cents) = random_case(21, 17, 5, 9);
        let rk = ResolvedKernel { kind: ResolvedKind::Tiled, row_tile: 8, cent_tile: 4 };
        let (mut best, mut dist) = (Vec::new(), Vec::new());
        assign_rows(&block, 5, &cents, &rk, &[], &mut best, &mut dist, true);
        let (rbest, rdist) = scalar_reference(&block, 5, &cents);
        assert_eq!(best, rbest);
        assert_eq!(dist, rdist);
    }

    #[test]
    fn normtrick_within_tolerance() {
        for (m, k, d, seed) in [(50, 9, 6, 7u64), (33, 16, 11, 8), (4, 1, 5, 9)] {
            let (block, cents) = random_case(m, k, d, seed);
            let mut cnorms = vec![0.0; k];
            centroid_sqnorms(&cents, &mut cnorms);
            let rk = KernelKind::NormTrick.resolve(k, d, false);
            assert_eq!(rk.kind, ResolvedKind::NormTrick);
            let (mut best, mut dist) = (Vec::new(), Vec::new());
            assign_rows(&block, d, &cents, &rk, &cnorms, &mut best, &mut dist, true);
            let (_, rdist) = scalar_reference(&block, d, &cents);
            for i in 0..m {
                let tol = 1e-9 * rdist[i].abs() + 1e-12;
                assert!(
                    (dist[i] - rdist[i]).abs() <= tol,
                    "row {i}: norm-trick {} vs exact {}",
                    dist[i],
                    rdist[i]
                );
            }
        }
    }

    #[test]
    fn ties_break_to_lower_index() {
        // Two identical centroids: the tiled scan must pick index 0, like
        // `nearest`.
        let block = vec![0.5, 0.5, 0.5, 0.5, 1.5, 1.5, 1.5, 1.5];
        let cents = Centroids { means: vec![1.0; 8], counts: vec![0; 2], d: 4 };
        let rk = KernelKind::Tiled.resolve(2, 4, false);
        let (mut best, mut dist) = (Vec::new(), Vec::new());
        assign_rows(&block, 4, &cents, &rk, &[], &mut best, &mut dist, true);
        assert_eq!(best, vec![0, 0]);
    }

    #[test]
    fn auto_resolution_heuristics() {
        // Tiny k·d falls back to scalar; mid-size problems tile; large
        // unpruned problems take the blocked-GEMM path.
        assert_eq!(KernelKind::Auto.resolve(4, 8, false).kind, ResolvedKind::Scalar);
        assert_eq!(KernelKind::Auto.resolve(16, 16, false).kind, ResolvedKind::Tiled);
        assert_eq!(KernelKind::Auto.resolve(64, 32, false).kind, ResolvedKind::Gemm);
        // Approximate paths are illegal under pruning (bounds must be
        // exact), so `Auto` and the explicit knobs all downgrade.
        assert_eq!(KernelKind::Auto.resolve(64, 32, true).kind, ResolvedKind::Tiled);
        assert_eq!(KernelKind::NormTrick.resolve(64, 32, true).kind, ResolvedKind::Tiled);
        assert_eq!(KernelKind::NormTrick.resolve(64, 32, false).kind, ResolvedKind::NormTrick);
        assert_eq!(KernelKind::Fma.resolve(64, 32, true).kind, ResolvedKind::Tiled);
        assert_eq!(KernelKind::Fma.resolve(64, 32, false).kind, ResolvedKind::Fma);
        assert_eq!(KernelKind::Gemm.resolve(64, 32, true).kind, ResolvedKind::Tiled);
        assert_eq!(KernelKind::Gemm.resolve(64, 32, false).kind, ResolvedKind::Gemm);
        // Tile sizes shrink as d grows.
        let small_d = KernelKind::Tiled.resolve(100, 4, false);
        let large_d = KernelKind::Tiled.resolve(100, 500, false);
        assert!(small_d.row_tile >= large_d.row_tile);
        assert!(small_d.cent_tile >= large_d.cent_tile);
        assert!(large_d.row_tile >= 8 && large_d.cent_tile >= 4);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            KernelKind::Auto,
            KernelKind::Scalar,
            KernelKind::Tiled,
            KernelKind::Fma,
            KernelKind::NormTrick,
            KernelKind::Gemm,
        ] {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(KernelKind::parse("normtrick"), Some(KernelKind::NormTrick));
        assert_eq!(KernelKind::parse("warp"), None);
        for kind in [
            ResolvedKind::Scalar,
            ResolvedKind::Tiled,
            ResolvedKind::Fma,
            ResolvedKind::NormTrick,
            ResolvedKind::Gemm,
        ] {
            assert_eq!(ResolvedKind::parse(kind.name()), Some(kind));
        }
    }

    /// The approximate kernels (FMA-fused tiled, blocked GEMM) must agree
    /// with the scalar `nearest` reference within the 1e-9 band across the
    /// awkward shapes: `d % 4 != 0`, `k = 1`, blocks smaller than a tile,
    /// non-trivial multi-tile scans.
    #[test]
    fn fma_and_gemm_within_tolerance() {
        for (m, k, d, seed) in [
            (1, 1, 3, 11u64),
            (3, 1, 5, 12),
            (4, 7, 9, 13),
            (50, 9, 6, 14),
            (33, 16, 11, 15),
            (67, 40, 13, 16),
            (130, 65, 7, 17),
        ] {
            let (block, cents) = random_case(m, k, d, seed);
            let mut cnorms = vec![0.0; k];
            centroid_sqnorms(&cents, &mut cnorms);
            let (rbest, rdist) = scalar_reference(&block, d, &cents);
            for kernel in [KernelKind::Fma, KernelKind::Gemm] {
                let rk = kernel.resolve(k, d, false);
                let (mut best, mut dist) = (Vec::new(), Vec::new());
                assign_rows(&block, d, &cents, &rk, &cnorms, &mut best, &mut dist, true);
                for i in 0..m {
                    let tol = 1e-9 * rdist[i].abs() + 1e-12;
                    assert!(
                        (dist[i] - rdist[i]).abs() <= tol,
                        "{kernel:?} row {i} in case {m}x{k}x{d}: {} vs exact {}",
                        dist[i],
                        rdist[i]
                    );
                    // On random data there are no near-ties; winners agree.
                    assert_eq!(best[i], rbest[i], "{kernel:?} winner, case {m}x{k}x{d}");
                }
            }
        }
    }

    #[test]
    fn gemm_spans_multiple_d_blocks() {
        // d > GEMM_DBLOCK forces panel accumulation across several
        // d-blocks; the winner must still match the reference.
        let (block, cents) = random_case(9, 5, 2 * GEMM_DBLOCK + 3, 21);
        let d = 2 * GEMM_DBLOCK + 3;
        let mut cnorms = vec![0.0; 5];
        centroid_sqnorms(&cents, &mut cnorms);
        let rk = KernelKind::Gemm.resolve(5, d, false);
        let (mut best, mut dist) = (Vec::new(), Vec::new());
        assign_rows(&block, d, &cents, &rk, &cnorms, &mut best, &mut dist, true);
        let (rbest, rdist) = scalar_reference(&block, d, &cents);
        assert_eq!(best, rbest);
        for i in 0..9 {
            assert!((dist[i] - rdist[i]).abs() <= 1e-9 * rdist[i].abs() + 1e-12);
        }
    }

    #[test]
    fn gemm_ties_break_to_lower_index() {
        // Two identical centroids produce identical dot products; the
        // strict `<` winner pass must keep index 0, like `nearest`.
        let block = vec![0.5, 0.5, 0.5, 0.5, 1.5, 1.5, 1.5, 1.5];
        let cents = Centroids { means: vec![1.0; 8], counts: vec![0; 2], d: 4 };
        let mut cnorms = vec![0.0; 2];
        centroid_sqnorms(&cents, &mut cnorms);
        let rk = KernelKind::Gemm.resolve(2, 4, false);
        let (mut best, mut dist) = (Vec::new(), Vec::new());
        assign_rows(&block, 4, &cents, &rk, &cnorms, &mut best, &mut dist, true);
        assert_eq!(best, vec![0, 0]);
    }

    #[test]
    fn tuned_tiles_override_is_clamped_and_exact() {
        let (block, cents) = random_case(37, 11, 6, 22);
        let rk = KernelKind::Tiled.resolve(11, 6, false).with_tiles(16, 64, 11);
        assert_eq!((rk.row_tile, rk.cent_tile), (16, 11), "cent tile capped at k");
        let (mut best, mut dist) = (Vec::new(), Vec::new());
        assign_rows(&block, 6, &cents, &rk, &[], &mut best, &mut dist, true);
        let (rbest, rdist) = scalar_reference(&block, 6, &cents);
        assert_eq!(best, rbest);
        assert_eq!(dist, rdist, "tuned tiles must not change exact results");
        assert_eq!(KernelKind::Tiled.resolve(11, 6, false).with_tiles(0, 0, 11).row_tile, 4);
    }

    #[test]
    fn sqnorm_matches_naive() {
        let v: Vec<f64> = (0..13).map(|x| (x as f64 * 0.31).sin()).collect();
        let naive: f64 = v.iter().map(|x| x * x).sum();
        assert!((sqnorm(&v) - naive).abs() < 1e-12);
        let naive_dot: f64 = v.iter().zip(&v).map(|(a, b)| a * b).sum();
        assert!((dot(&v, &v) - naive_dot).abs() < 1e-12);
    }
}
