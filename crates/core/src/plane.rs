//! The data-plane abstraction: how a worker turns a scheduler [`Task`]
//! into row data.
//!
//! All three knor engines run the *same* iteration protocol
//! ([`crate::driver`]) and the *same* per-row/blocked commit arithmetic;
//! what actually differs between knori and knors is only where a row's
//! bytes live and how they reach the worker:
//!
//! * **direct planes** — rows are addressable memory (NUMA arenas, a
//!   rank's matrix slice). The worker loop is [`driver::drain_queue_kernel`]
//!   over a borrow-per-row fetch.
//! * **staged planes** — rows live behind an I/O stack (the SAFS-lite
//!   row-cache/page-cache/device pipeline). The worker loop is
//!   [`drain_queue_staged`] below: the depth-2 filter/prefetch pipeline
//!   with whole-task staging that used to be inlined in `knor_sem`'s
//!   engine, now shared so any engine can mount a SEM plane (knord mounts
//!   one per rank).
//!
//! Both loops stage and commit rows in **task row order** with the shared
//! [`driver`] helpers, so for a deterministic task→worker mapping the
//! iteration trajectory is bitwise independent of which plane the rows
//! came through — the property knord's `RankPlane` knob relies on.
//!
//! A [`DataPlane`] is the engine-facing object: the compute super-phase
//! plus the coordinator hooks that belong to row access (row-cache
//! refresh decisions, per-iteration I/O accounting). [`PlaneBackend`]
//! adapts any plane to the driver's [`LloydBackend`] for engines with no
//! engine-specific reduce step; knord implements [`LloydBackend`] itself,
//! delegating everything but `reduce` to its per-rank plane.

use knor_matrix::RowView;
use knor_sched::Task;

use crate::centroids::LocalAccum;
use crate::driver::{
    self, filter_row, filter_row_yy, process_block_algo, process_block_kernel, process_row_full,
    process_row_mti, process_row_yy, yy_init_bounds, IterView, LloydBackend, WorkerReport,
};
use crate::kernel::{KernelScratch, ResolvedKernel, ResolvedKind};
use crate::pruning::Pruning;
use crate::stats::IterStats;
use crate::sync::ExclusiveCell;
use crate::trace::{Phase, WorkerTracer};

/// How an engine's workers obtain row data. One instance is shared by all
/// workers of one driver run; per-worker mutable state lives inside the
/// plane behind the same barrier discipline the driver itself uses.
pub trait DataPlane: Sync {
    /// Called once per worker thread before the first iteration
    /// (the in-memory plane binds the thread to its NUMA node here).
    fn worker_start(&self, _w: usize) {}

    /// Coordinator-only hook before barrier A of each iteration
    /// (the SEM plane decides row-cache refreshes here).
    fn pre_iteration(&self, _iter: usize) {}

    /// The compute super-phase for worker `w`: drain `view.queue`, obtain
    /// row data however this plane does, and commit through the shared
    /// driver helpers.
    fn compute(&self, w: usize, view: &IterView<'_>, accum: &mut LocalAccum) -> WorkerReport;

    /// Coordinator-only hook after the iteration's statistics are final
    /// (the SEM plane records its per-iteration I/O here). `aux_total` is
    /// the sum of the workers' [`WorkerReport::aux`] counters.
    fn end_iteration(&self, _iter: usize, _stats: &IterStats, _aux_total: u64) {}
}

/// Adapter running the driver protocol directly over a plane — the whole
/// backend for engines whose `reduce` step is the identity (knori, knors).
/// knord supplies its own [`LloydBackend`] wrapping a plane plus the
/// allreduce window.
pub struct PlaneBackend<'a, P: DataPlane + ?Sized>(pub &'a P);

impl<P: DataPlane + ?Sized> LloydBackend for PlaneBackend<'_, P> {
    fn worker_start(&self, w: usize) {
        self.0.worker_start(w);
    }

    fn pre_iteration(&self, iter: usize) {
        self.0.pre_iteration(iter);
    }

    fn compute(&self, w: usize, view: &IterView<'_>, accum: &mut LocalAccum) -> WorkerReport {
        self.0.compute(w, view, accum)
    }

    fn end_iteration(&self, iter: usize, stats: &IterStats, aux_total: u64) {
        self.0.end_iteration(iter, stats, aux_total);
    }
}

/// The direct in-memory plane over a contiguous row slice — knord's
/// per-rank view of the matrix (knori's NUMA-arena plane lives in
/// [`crate::engine`], where the arenas and access tallies are).
pub struct SlicePlane<'a> {
    rows: RowView<'a>,
    /// Per-worker kernel scratch, reused across iterations so the hot
    /// path never reallocates.
    scratch: Vec<ExclusiveCell<KernelScratch>>,
}

impl<'a> SlicePlane<'a> {
    /// Build a plane over `rows` for `nthreads` workers running the
    /// resolved kernel `rk`.
    pub fn new(rows: RowView<'a>, rk: &ResolvedKernel, nthreads: usize) -> Self {
        let d = rows.ncol();
        Self {
            rows,
            scratch: (0..nthreads).map(|_| ExclusiveCell::new(KernelScratch::new(rk, d))).collect(),
        }
    }
}

impl DataPlane for SlicePlane<'_> {
    fn compute(&self, w: usize, view: &IterView<'_>, accum: &mut LocalAccum) -> WorkerReport {
        let mut rep = WorkerReport::default();
        // Safety: own-worker slot, touched only inside this worker's
        // compute super-phase.
        let scratch = unsafe { self.scratch[w].get_mut() };
        driver::drain_queue_kernel(w, view, accum, &mut rep, scratch, |r| self.rows.row(r));
        rep
    }
}

/// One worker's reusable buffers for the staged drain. All grow-only —
/// steady-state iterations never allocate here.
#[derive(Debug, Default)]
pub struct StagedScratch {
    /// Every needed row of the current task, staged contiguously in task
    /// row order (fast-tier hits copied in place, backing-tier rows
    /// scattered into their slots after the merged fetch).
    pub data: Vec<f64>,
    /// Indices into the task's `needed` list whose rows missed the fast
    /// tier (the rows eligible for retention on a refresh iteration).
    pub miss_idx: Vec<usize>,
    /// Backing-tier fetch staging (miss rows, in fetch order).
    pub fetch: Vec<f64>,
    /// Row ids handed to the backing tier, in fetch order.
    pub miss_rows: Vec<usize>,
    /// Blocked-commit best-index scratch.
    pub best: Vec<u32>,
    /// Blocked-commit best-distance scratch.
    pub best_dist: Vec<f64>,
    /// Per-row contribution weights (generic algorithm path).
    pub weights: Vec<f64>,
    /// Recycled Clause-1 `needed` buffers (two alive at pipeline depth 2).
    free_needed: Vec<Vec<usize>>,
}

impl StagedScratch {
    /// Empty scratch; every buffer grows on first use and is then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The staged row source a [`drain_queue_staged`] worker loop pulls from:
/// a fast tier (the SEM row cache) over a backing tier (the SAFS page
/// cache + device). Local row ids are the driver's; the source owns any
/// translation to global/on-disk ids.
pub trait StagedSource: Sync {
    /// Dimensionality of a row.
    fn d(&self) -> usize;

    /// Hint that `needed` will be staged soon — the depth-2 pipeline's
    /// prefetch hand-off, issued for the *next* task before the current
    /// one computes. Best-effort; may do nothing.
    fn prefetch(&self, _needed: &[usize]) {}

    /// Stage every `needed` row contiguously into `scratch.data` in task
    /// row order: fast-tier hits copy straight into their slot; misses are
    /// recorded in `scratch.miss_idx`/`miss_rows`, fetched from the
    /// backing tier in one merged request, and scattered into place.
    /// Returns the number of fast-tier hits. When `tracer` is present the
    /// source records its hit/miss/scatter intervals through it
    /// (measurement-only — see [`crate::trace`]).
    fn stage(
        &self,
        w: usize,
        needed: &[usize],
        scratch: &mut StagedScratch,
        tracer: Option<&WorkerTracer<'_>>,
    ) -> u64;

    /// Whether staged backing-tier rows should be retained in the fast
    /// tier this iteration (the row-cache refresh decision, made by the
    /// coordinator in `pre_iteration`).
    fn refreshing(&self) -> bool;

    /// Retain one staged row in the fast tier (refresh iterations only).
    fn retain(&self, _r: usize, _v: &[f64]) {}
}

/// Row-level filter for a whole task: collects the rows that must be
/// fetched into `needed` (cleared first) and drift-updates the bounds of
/// the skipped ones. Subsampling algorithms drop out-of-scope rows here —
/// before any byte is requested, so a skipped row costs no I/O, exactly
/// like a Clause-1 skip. Under Yinyang the group filter plays the same
/// role: a row whose loosened upper bound clears every group lower bound
/// needs no centroid scan, so the staged plane never fetches it. Skips
/// are tallied in `io_skip_rows` (a subset of `clause1_rows`) so the
/// fetch-avoidance is visible separately from distance pruning.
pub fn filter_task_into(
    task: &Task,
    view: &IterView<'_>,
    counters: &mut crate::pruning::PruneCounters,
    needed: &mut Vec<usize>,
) {
    needed.clear();
    if view.iter == 0 || !view.pruning {
        if view.scoped {
            needed.extend(task.rows.clone().filter(|&r| view.in_scope(r)));
        } else {
            needed.extend(task.rows.clone());
        }
        return;
    }
    let yy = view.scheme == Pruning::Yinyang;
    for r in task.rows.clone() {
        let keep = if yy {
            filter_row_yy(r, view.assign, view.upper, view.lower, view.yy, counters)
        } else {
            filter_row(r, view.assign, view.upper, view.mti, counters)
        };
        if keep {
            needed.push(r);
        } else {
            counters.io_skip_rows += 1;
        }
    }
}

/// Drain worker `w`'s share of the task queue through a staged source at
/// pipeline depth 2: the Clause-1 filter for the *next* task runs (and its
/// prefetch is submitted) before the *current* task computes, overlapping
/// I/O with computation as FlashGraph does.
///
/// Rows are staged and committed in task row order through the same
/// [`driver`] commit helpers as the direct drain, so a staged plane walks
/// the same trajectory as a direct plane over the same rows.
pub fn drain_queue_staged<S: StagedSource + ?Sized>(
    src: &S,
    w: usize,
    view: &IterView<'_>,
    accum: &mut LocalAccum,
    rep: &mut WorkerReport,
    scratch: &mut StagedScratch,
) {
    let d = src.d();
    let refreshing = src.refreshing();
    let mut pending: Option<Vec<usize>> = None;
    loop {
        let next = view.queue.next(w).map(|task| {
            let mut needed = scratch.free_needed.pop().unwrap_or_default();
            filter_task_into(&task, view, &mut rep.counters, &mut needed);
            if !needed.is_empty() {
                let t0 = view.tracer.as_ref().map(|t| t.now());
                src.prefetch(&needed);
                if let (Some(t), Some(t0)) = (view.tracer.as_ref(), t0) {
                    t.record(Phase::IoFetch, t0, (needed.len() * d * 8) as u64);
                }
            }
            needed
        });
        let current = pending.take();
        pending = next;
        let Some(needed) = current else {
            if pending.is_none() {
                break;
            }
            continue;
        };
        if !needed.is_empty() {
            rep.aux += src.stage(w, &needed, scratch, view.tracer.as_ref());
            commit_staged(&needed, view, accum, rep, scratch);
            if refreshing {
                for &i in &scratch.miss_idx {
                    src.retain(needed[i], &scratch.data[i * d..(i + 1) * d]);
                }
            }
        }
        scratch.free_needed.push(needed);
    }
}

/// Commit one staged task (rows contiguous in `scratch.data`, task row
/// order) through the shared driver paths: the generic algorithm block
/// path, the blocked assignment kernel, or the per-row MTI/full-scan state
/// machine — the same dispatch [`driver::drain_queue_kernel`] makes for
/// direct planes.
fn commit_staged(
    rows: &[usize],
    view: &IterView<'_>,
    accum: &mut LocalAccum,
    rep: &mut WorkerReport,
    scratch: &mut StagedScratch,
) {
    let d = view.cents.d;
    let block = &scratch.data[..rows.len() * d];
    if !view.is_lloyd {
        // Generic algorithm path: one contiguous block through the shared
        // map_block commit protocol (spherical batches through the dot
        // micro-kernel).
        process_block_algo(
            rows.iter().copied(),
            block,
            view,
            accum,
            rep,
            &mut scratch.best,
            &mut scratch.weights,
            &mut scratch.best_dist,
        );
        return;
    }
    let full_scan = view.iter == 0 || !view.pruning;
    if full_scan && view.kernel.kind != ResolvedKind::Scalar {
        process_block_kernel(
            rows.iter().copied(),
            block,
            view,
            accum,
            rep,
            &mut scratch.best,
            &mut scratch.best_dist,
        );
        return;
    }
    let yy = view.scheme == Pruning::Yinyang;
    for (i, &r) in rows.iter().enumerate() {
        let v = &block[i * d..(i + 1) * d];
        rep.rows_accessed += 1;
        let reassigned = if view.iter > 0 && view.pruning {
            // Bounds were already drift-loosened in the filter.
            if yy {
                process_row_yy(
                    r,
                    v,
                    view.cents,
                    view.yy,
                    view.assign,
                    view.upper,
                    view.lower,
                    accum,
                    &mut rep.counters,
                )
            } else {
                process_row_mti(
                    r,
                    v,
                    view.cents,
                    view.mti,
                    view.assign,
                    view.upper,
                    accum,
                    &mut rep.counters,
                )
            }
        } else {
            let re = process_row_full(
                r,
                v,
                view.cents,
                view.pruning,
                view.assign,
                view.upper,
                accum,
                &mut rep.counters,
            );
            if yy && view.iter == 0 {
                let a = unsafe { *view.assign.get(r) } as usize;
                yy_init_bounds(r, v, a, view.cents, view.yy, view.lower, &mut rep.counters);
            }
            re
        };
        rep.reassigned += u64::from(reassigned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centroids::Centroids;
    use crate::driver::{run_lloyd, DriverConfig, DriverOutcome};
    use crate::kernel::KernelKind;
    use knor_numa::{Placement, Topology};
    use knor_sched::{SchedulerKind, TaskQueue};

    /// A staged source over an in-memory matrix with an always-miss fast
    /// tier: every row goes through the merged-fetch + scatter path.
    struct MemSource {
        data: Vec<f64>,
        d: usize,
    }

    impl StagedSource for MemSource {
        fn d(&self) -> usize {
            self.d
        }

        fn stage(
            &self,
            _w: usize,
            needed: &[usize],
            scratch: &mut StagedScratch,
            _tracer: Option<&WorkerTracer<'_>>,
        ) -> u64 {
            let d = self.d;
            scratch.miss_idx.clear();
            scratch.miss_rows.clear();
            if scratch.data.len() < needed.len() * d {
                scratch.data.resize(needed.len() * d, 0.0);
            }
            for (i, &r) in needed.iter().enumerate() {
                scratch.miss_idx.push(i);
                scratch.miss_rows.push(r);
                scratch.data[i * d..(i + 1) * d].copy_from_slice(&self.data[r * d..(r + 1) * d]);
            }
            0
        }

        fn refreshing(&self) -> bool {
            false
        }
    }

    struct StagedTestPlane {
        src: MemSource,
        scratch: Vec<ExclusiveCell<StagedScratch>>,
    }

    impl DataPlane for StagedTestPlane {
        fn compute(&self, w: usize, view: &IterView<'_>, accum: &mut LocalAccum) -> WorkerReport {
            let mut rep = WorkerReport::default();
            // Safety: own-worker slot, compute super-phase only.
            let scratch = unsafe { self.scratch[w].get_mut() };
            drain_queue_staged(&self.src, w, view, accum, &mut rep, scratch);
            rep
        }
    }

    fn run_planes(
        data: &[f64],
        n: usize,
        d: usize,
        k: usize,
        pruning: Pruning,
        kernel: KernelKind,
        threads: usize,
    ) -> (DriverOutcome, DriverOutcome) {
        let cfg = DriverConfig {
            k,
            d,
            n,
            nthreads: threads,
            max_iters: 40,
            tol: 0.0,
            pruning,
            task_size: 16,
            kernel,
            tiles: None,
            row_offset: 0,
            replication: false,
            trace: None,
        };
        let init =
            Centroids::from_matrix(&knor_matrix::DMatrix::from_vec(data[..k * d].to_vec(), k, d));
        let rk = cfg.resolve_kernel();
        let run = |plane: &dyn DataPlane| {
            let topo = Topology::flat(threads);
            let placement = Placement::new(&topo, n, threads);
            let queue = TaskQueue::new(SchedulerKind::Static, &placement);
            run_lloyd(&cfg, init.clone(), &placement, &queue, &PlaneBackend(plane))
        };
        let direct = SlicePlane::new(RowView::new(data, d), &rk, threads);
        let staged = StagedTestPlane {
            src: MemSource { data: data.to_vec(), d },
            scratch: (0..threads).map(|_| ExclusiveCell::new(StagedScratch::new())).collect(),
        };
        (run(&direct), run(&staged))
    }

    /// The module's core promise: a staged plane and a direct plane over
    /// the same rows walk bitwise-identical trajectories under a
    /// deterministic scheduler — for full scans and for MTI.
    #[test]
    fn staged_and_direct_planes_are_bitwise_identical() {
        let mut data = Vec::new();
        for i in 0..300 {
            let c = (i % 5) as f64 * 6.0;
            data.push(c + (i as f64 * 0.13).sin());
            data.push(-c + (i as f64 * 0.29).cos());
            data.push((i as f64 * 0.07).sin() * 2.0);
        }
        for pruning in [Pruning::None, Pruning::Mti, Pruning::Yinyang] {
            for kernel in [KernelKind::Scalar, KernelKind::Tiled] {
                for threads in [1usize, 2] {
                    let (direct, staged) = run_planes(&data, 300, 3, 12, pruning, kernel, threads);
                    assert_eq!(
                        direct.assignments, staged.assignments,
                        "pruning={pruning:?} kernel={kernel:?} threads={threads}"
                    );
                    assert_eq!(
                        direct.centroids, staged.centroids,
                        "pruning={pruning:?} kernel={kernel:?} threads={threads}"
                    );
                    assert_eq!(direct.iters.len(), staged.iters.len());
                    for (a, b) in direct.iters.iter().zip(&staged.iters) {
                        assert_eq!(a.reassigned, b.reassigned, "iter {}", a.iter);
                        assert_eq!(a.rows_accessed, b.rows_accessed, "iter {}", a.iter);
                        assert_eq!(a.prune.clause1_rows, b.prune.clause1_rows, "iter {}", a.iter);
                        assert_eq!(
                            a.prune.dist_computations, b.prune.dist_computations,
                            "iter {}",
                            a.iter
                        );
                        // Only the staged plane skips fetches; its skip
                        // tally can never exceed the shared clause-1 rows.
                        assert_eq!(a.prune.io_skip_rows, 0, "iter {}", a.iter);
                        assert!(b.prune.io_skip_rows <= b.prune.clause1_rows, "iter {}", a.iter);
                    }
                }
            }
        }
    }

    /// NUMA replication composes with the staged plane (knors's access
    /// shape): node-local reads through `drain_queue_staged` must not move
    /// the trajectory by a bit.
    #[test]
    fn staged_plane_replication_is_bitwise_identical() {
        let mut data = Vec::new();
        for i in 0..300 {
            let c = (i % 5) as f64 * 6.0;
            data.push(c + (i as f64 * 0.13).sin());
            data.push(-c + (i as f64 * 0.29).cos());
            data.push((i as f64 * 0.07).sin() * 2.0);
        }
        let (n, d, k, threads) = (300usize, 3usize, 12usize, 2usize);
        for pruning in [Pruning::None, Pruning::Mti, Pruning::Yinyang] {
            let run = |replication: bool| {
                let cfg = DriverConfig {
                    k,
                    d,
                    n,
                    nthreads: threads,
                    max_iters: 40,
                    tol: 0.0,
                    pruning,
                    task_size: 16,
                    kernel: KernelKind::Tiled,
                    tiles: None,
                    row_offset: 0,
                    replication,
                    trace: None,
                };
                let init = Centroids::from_matrix(&knor_matrix::DMatrix::from_vec(
                    data[..k * d].to_vec(),
                    k,
                    d,
                ));
                let topo = Topology::synthetic(2, 1);
                let placement = Placement::new(&topo, n, threads);
                let queue = TaskQueue::new(SchedulerKind::Static, &placement);
                let staged = StagedTestPlane {
                    src: MemSource { data: data.to_vec(), d },
                    scratch: (0..threads)
                        .map(|_| ExclusiveCell::new(StagedScratch::new()))
                        .collect(),
                };
                run_lloyd(&cfg, init, &placement, &queue, &PlaneBackend(&staged))
            };
            let off = run(false);
            let on = run(true);
            assert_eq!(off.assignments, on.assignments, "pruning={pruning:?}");
            assert_eq!(off.centroids, on.centroids, "pruning={pruning:?}");
            assert_eq!(off.iters.len(), on.iters.len());
        }
    }
}
