//! Centroid containers: the read-only global set and per-thread accumulators.

use knor_matrix::DMatrix;

/// The global centroid set for one iteration (`C^t` in the paper):
/// `k` means of dimension `d` plus member counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Centroids {
    /// Row-major `k x d` means.
    pub means: Vec<f64>,
    /// Members assigned to each centroid in the previous update.
    pub counts: Vec<u64>,
    /// Dimensionality.
    pub d: usize,
}

impl Centroids {
    /// Zeroed set of `k` centroids of dimension `d`.
    pub fn zeros(k: usize, d: usize) -> Self {
        Self { means: vec![0.0; k * d], counts: vec![0; k], d }
    }

    /// Build from a `k x d` matrix of initial means.
    pub fn from_matrix(m: &DMatrix) -> Self {
        Self { means: m.as_slice().to_vec(), counts: vec![0; m.nrow()], d: m.ncol() }
    }

    /// Number of centroids, `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.counts.len()
    }

    /// Borrow centroid `c`'s mean.
    #[inline]
    pub fn mean(&self, c: usize) -> &[f64] {
        &self.means[c * self.d..(c + 1) * self.d]
    }

    /// Export as a `k x d` matrix.
    pub fn to_matrix(&self) -> DMatrix {
        DMatrix::from_vec(self.means.clone(), self.k(), self.d)
    }
}

/// One thread's private accumulator (`ptC^t` in Algorithm 1): running sums
/// and counts of the points it assigned this iteration.
///
/// Counts are signed because under MTI the accumulator holds *deltas*: a
/// Clause-1-skipped point contributes nothing (its data is never read —
/// that is where knors saves its I/O), while a reassigned point subtracts
/// itself from its old cluster and adds itself to the new one. Without
/// pruning the accumulator holds plain full sums and counts stay
/// non-negative.
///
/// Buffers are independently heap-allocated per thread, so there is no
/// false sharing between workers on the hot `add` path.
#[derive(Debug, Clone)]
pub struct LocalAccum {
    /// Row-major `k x d` running sums (or sum deltas).
    pub sums: Vec<f64>,
    /// Membership counts (or count deltas).
    pub counts: Vec<i64>,
    /// Per-cluster contribution-weight totals. Maintained only by
    /// [`LocalAccum::add_weighted`] (the generic algorithm path); the
    /// Lloyd fast path's [`LocalAccum::add`]/[`LocalAccum::sub`] leave
    /// them untouched — Lloyd never reads them, and the hot loop stays
    /// exactly as it was.
    pub weights: Vec<f64>,
    d: usize,
}

impl LocalAccum {
    /// Zeroed accumulator for `k` clusters of dimension `d`.
    pub fn new(k: usize, d: usize) -> Self {
        Self { sums: vec![0.0; k * d], counts: vec![0; k], weights: vec![0.0; k], d }
    }

    /// Add point `v` to cluster `c` (Algorithm 1 line 14).
    #[inline]
    pub fn add(&mut self, c: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.d);
        let dst = &mut self.sums[c * self.d..(c + 1) * self.d];
        for (s, x) in dst.iter_mut().zip(v) {
            *s += x;
        }
        self.counts[c] += 1;
    }

    /// Remove point `v` from cluster `c` (delta mode: point moved away).
    #[inline]
    pub fn sub(&mut self, c: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.d);
        let dst = &mut self.sums[c * self.d..(c + 1) * self.d];
        for (s, x) in dst.iter_mut().zip(v) {
            *s -= x;
        }
        self.counts[c] -= 1;
    }

    /// Add point `v` to cluster `c` with contribution weight `w`
    /// (the generic map/update path: `sums += w·v`, `weights += w`,
    /// `counts += 1`). With `w = 1.0` the sums match [`LocalAccum::add`]
    /// exactly (multiplication by 1.0 is the identity in IEEE 754).
    #[inline]
    pub fn add_weighted(&mut self, c: usize, v: &[f64], w: f64) {
        debug_assert_eq!(v.len(), self.d);
        let dst = &mut self.sums[c * self.d..(c + 1) * self.d];
        for (s, x) in dst.iter_mut().zip(v) {
            *s += w * x;
        }
        self.counts[c] += 1;
        self.weights[c] += w;
    }

    /// Zero all sums and counts for the next iteration.
    pub fn reset(&mut self) {
        self.sums.iter_mut().for_each(|x| *x = 0.0);
        self.counts.iter_mut().for_each(|x| *x = 0);
        self.weights.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Merge `other` into `self` (serial reduction step; the engine uses a
    /// dimension-sliced parallel equivalent).
    pub fn merge(&mut self, other: &LocalAccum) {
        debug_assert_eq!(self.sums.len(), other.sums.len());
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.weights.iter_mut().zip(&other.weights) {
            *a += b;
        }
    }

    /// Heap bytes held (Table 1 accounting: `O(Tkd)` across threads).
    pub fn heap_bytes(&self) -> u64 {
        ((self.sums.len() + self.counts.len() + self.weights.len()) * 8) as u64
    }
}

/// Finalize merged sums/counts into the next iteration's means.
///
/// Empty clusters keep their previous mean (zero drift), matching knor's
/// behaviour and keeping MTI bounds valid.
///
/// # Panics
/// Panics (debug) if any count is negative — delta bookkeeping went wrong.
pub fn finalize_means(sums: &[f64], counts: &[i64], prev: &Centroids, next: &mut Centroids) {
    let k = prev.k();
    let d = prev.d;
    debug_assert_eq!(sums.len(), k * d);
    for c in 0..k {
        debug_assert!(counts[c] >= 0, "negative membership for cluster {c}");
        let dst = &mut next.means[c * d..(c + 1) * d];
        if counts[c] <= 0 {
            dst.copy_from_slice(prev.mean(c));
        } else {
            let inv = 1.0 / counts[c] as f64;
            for (j, m) in dst.iter_mut().enumerate() {
                *m = sums[c * d + j] * inv;
            }
        }
        next.counts[c] = counts[c].max(0) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_add_and_merge() {
        let mut a = LocalAccum::new(2, 3);
        a.add(0, &[1.0, 2.0, 3.0]);
        a.add(0, &[1.0, 0.0, 1.0]);
        a.add(1, &[5.0, 5.0, 5.0]);
        let mut b = LocalAccum::new(2, 3);
        b.add(1, &[1.0, 1.0, 1.0]);
        a.merge(&b);
        assert_eq!(a.counts, vec![2, 2]);
        assert_eq!(&a.sums[0..3], &[2.0, 2.0, 4.0]);
        assert_eq!(&a.sums[3..6], &[6.0, 6.0, 6.0]);
        a.reset();
        assert!(a.sums.iter().all(|&x| x == 0.0));
        assert_eq!(a.counts, vec![0, 0]);
    }

    #[test]
    fn delta_add_sub_round_trips() {
        let mut a = LocalAccum::new(2, 2);
        a.add(1, &[3.0, 4.0]);
        a.sub(0, &[3.0, 4.0]); // point moved from cluster 0 to 1
        assert_eq!(a.counts, vec![-1, 1]);
        assert_eq!(&a.sums[0..2], &[-3.0, -4.0]);
        assert_eq!(&a.sums[2..4], &[3.0, 4.0]);
    }

    #[test]
    fn finalize_handles_empty_clusters() {
        let prev = Centroids { means: vec![1.0, 1.0, 9.0, 9.0], counts: vec![3, 0], d: 2 };
        let mut next = Centroids::zeros(2, 2);
        finalize_means(&[4.0, 8.0, 0.0, 0.0], &[2, 0], &prev, &mut next);
        assert_eq!(next.mean(0), &[2.0, 4.0]);
        assert_eq!(next.mean(1), &[9.0, 9.0], "empty cluster keeps its mean");
        assert_eq!(next.counts, vec![2, 0]);
    }

    #[test]
    fn centroids_round_trip_matrix() {
        let m = DMatrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let c = Centroids::from_matrix(&m);
        assert_eq!(c.k(), 2);
        assert_eq!(c.mean(1), &[3.0, 4.0]);
        assert_eq!(c.to_matrix(), m);
    }
}
