//! Centroid initialization: random partition, Forgy, k-means++ and
//! user-provided seeds.

use crate::centroids::Centroids;
use crate::distance::sqdist;
use knor_matrix::DMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Initialization strategy for the first iteration's centroids.
#[derive(Debug, Clone, PartialEq)]
pub enum InitMethod {
    /// Assign every point to a random cluster and take the means
    /// (knor's `random` init).
    RandomPartition,
    /// Pick `k` distinct random rows as the initial centroids
    /// (knor's `forgy` init).
    Forgy,
    /// k-means++ D²-weighted seeding (knor's `kmeanspp` init).
    PlusPlus,
    /// Explicit `k x d` means supplied by the caller (knor's `none` init —
    /// used by every cross-module equivalence test in this repo).
    Given(DMatrix),
}

impl InitMethod {
    /// Compute initial centroids for `data` with `k` clusters.
    ///
    /// # Panics
    /// Panics if `k` is zero, `k > n`, or (for [`InitMethod::Given`]) the
    /// supplied matrix shape is not `k x d`.
    pub fn initialize(&self, data: &DMatrix, k: usize, seed: u64) -> Centroids {
        self.initialize_parallel(data, k, seed, 1)
    }

    /// [`InitMethod::initialize`] with a worker budget: the k-means++ D²
    /// scan — serial `O(nk)` and the startup bottleneck at large `n` —
    /// runs its per-chunk distance updates and partial sums on `threads`
    /// scoped threads. The chunk decomposition (and therefore every sum,
    /// comparison and pick) is **independent of `threads`**: any thread
    /// count produces the same centroids as the serial path, bit for bit.
    /// The other methods are O(n) single-pass and ignore `threads`.
    ///
    /// Note on cross-version reproducibility: the chunked D² arithmetic is
    /// the canonical definition. For `n <= 4096` (one chunk) it coincides
    /// exactly with the classic flat scan shipped before the
    /// parallelization; for larger `n` a seeded pick may differ from what
    /// pre-chunking versions produced (FP addition is non-associative),
    /// while remaining deterministic per seed forever after.
    pub fn initialize_parallel(
        &self,
        data: &DMatrix,
        k: usize,
        seed: u64,
        threads: usize,
    ) -> Centroids {
        assert!(k >= 1, "k must be positive");
        assert!(k <= data.nrow(), "k = {k} exceeds n = {}", data.nrow());
        let d = data.ncol();
        match self {
            InitMethod::Given(m) => {
                assert_eq!((m.nrow(), m.ncol()), (k, d), "Given init has wrong shape");
                Centroids::from_matrix(m)
            }
            InitMethod::Forgy => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let rows = sample_distinct(&mut rng, data.nrow(), k);
                let mut c = Centroids::zeros(k, d);
                for (i, &r) in rows.iter().enumerate() {
                    c.means[i * d..(i + 1) * d].copy_from_slice(data.row(r));
                }
                c
            }
            InitMethod::RandomPartition => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut sums = vec![0.0f64; k * d];
                let mut counts = vec![0u64; k];
                for row in data.rows() {
                    let c = rng.gen_range(0..k);
                    for (s, x) in sums[c * d..(c + 1) * d].iter_mut().zip(row) {
                        *s += x;
                    }
                    counts[c] += 1;
                }
                let mut cents = Centroids::zeros(k, d);
                for c in 0..k {
                    if counts[c] == 0 {
                        // Degenerate (tiny n): fall back to a sample row.
                        let r = rng.gen_range(0..data.nrow());
                        cents.means[c * d..(c + 1) * d].copy_from_slice(data.row(r));
                    } else {
                        let inv = 1.0 / counts[c] as f64;
                        for j in 0..d {
                            cents.means[c * d + j] = sums[c * d + j] * inv;
                        }
                    }
                }
                cents
            }
            InitMethod::PlusPlus => plus_plus(data, k, seed, threads.max(1)),
        }
    }
}

fn sample_distinct<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    // Floyd's algorithm: k distinct samples in O(k) expected time.
    let mut chosen = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

/// Rows per k-means++ scan chunk. The chunk grid is fixed — never derived
/// from the thread count — so chunk sums, the total, and every pick are
/// identical for any `threads`. (For `n <= PP_CHUNK` there is one chunk
/// and the arithmetic degenerates to the classic fully-serial scan.)
const PP_CHUNK: usize = 4096;

/// Update `dist2` for one chunk against a freshly chosen center (or fill
/// it, on the first pass) and return the chunk's weight sum, accumulated
/// in index order.
fn pp_scan_chunk(
    data: &DMatrix,
    center: &[f64],
    base: usize,
    dpart: &mut [f64],
    fill: bool,
) -> f64 {
    let mut sum = 0.0;
    for (j, dv) in dpart.iter_mut().enumerate() {
        let s = sqdist(data.row(base + j), center);
        if fill || s < *dv {
            *dv = s;
        }
        sum += *dv;
    }
    sum
}

/// D²-weighted pick from chunk sums + per-element weights: locate the
/// chunk by whole-chunk sums, then scan element-wise inside it. The
/// selection never depends on the parallel split, only on the fixed chunk
/// grid. `dist2_at`/`chunk_sum_at` abstract the storage (plain slices on
/// the serial path, barrier-ordered shared buffers on the pooled path).
fn pp_pick(
    n: usize,
    nchunks: usize,
    target0: f64,
    dist2_at: impl Fn(usize) -> f64,
    chunk_sum_at: impl Fn(usize) -> f64,
) -> usize {
    let mut target = target0;
    let mut pick = n - 1;
    for ci in 0..nchunks {
        let cs = chunk_sum_at(ci);
        if target - cs <= 0.0 {
            let start = ci * PP_CHUNK;
            let end = (start + PP_CHUNK).min(n);
            pick = end - 1;
            for i in start..end {
                target -= dist2_at(i);
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            break;
        }
        target -= cs;
    }
    pick
}

fn plus_plus(data: &DMatrix, k: usize, seed: u64, threads: usize) -> Centroids {
    let n = data.nrow();
    let nchunks = n.div_ceil(PP_CHUNK);
    let nthreads = threads.min(nchunks).max(1);
    if nthreads <= 1 {
        plus_plus_serial(data, k, seed)
    } else {
        plus_plus_pooled(data, k, seed, nthreads)
    }
}

/// The serial D² scan over the canonical chunk grid.
fn plus_plus_serial(data: &DMatrix, k: usize, seed: u64) -> Centroids {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = data.nrow();
    let d = data.ncol();
    let nchunks = n.div_ceil(PP_CHUNK);
    let mut c = Centroids::zeros(k, d);
    let first = rng.gen_range(0..n);
    c.means[0..d].copy_from_slice(data.row(first));

    // dist2[i] = squared distance of row i to its nearest chosen center;
    // chunk_sums[ci] = in-order sum of dist2 over chunk ci.
    let mut dist2 = vec![0.0f64; n];
    let mut chunk_sums = vec![0.0f64; nchunks];
    let mut center = first;
    let mut fill = true;
    for chosen in 1..k {
        for (ci, (dpart, sum)) in dist2.chunks_mut(PP_CHUNK).zip(chunk_sums.iter_mut()).enumerate()
        {
            *sum = pp_scan_chunk(data, data.row(center), ci * PP_CHUNK, dpart, fill);
        }
        fill = false;
        let total: f64 = chunk_sums.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n) // all points coincide with a center
        } else {
            let t0 = rng.gen::<f64>() * total;
            pp_pick(n, nchunks, t0, |i| dist2[i], |ci| chunk_sums[ci])
        };
        c.means[chosen * d..(chosen + 1) * d].copy_from_slice(data.row(next));
        center = next;
    }
    c
}

/// The pooled D² scan: one set of workers lives for the whole run (the
/// driver's barrier discipline, not a spawn per pick — `k` picks × `T`
/// spawn/join cycles would dwarf the scan at large `k`). Chunks are
/// round-robined by index onto workers; writes go to disjoint,
/// barrier-ordered slots of shared buffers, so the arithmetic — and every
/// pick — is identical to the serial path.
fn plus_plus_pooled(data: &DMatrix, k: usize, seed: u64, nthreads: usize) -> Centroids {
    use knor_matrix::shared::SharedRows;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Barrier;

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = data.nrow();
    let d = data.ncol();
    let nchunks = n.div_ceil(PP_CHUNK);
    let mut c = Centroids::zeros(k, d);
    let first = rng.gen_range(0..n);
    c.means[0..d].copy_from_slice(data.row(first));

    let dist2: SharedRows<f64> = SharedRows::new(n, 0.0);
    let chunk_sums: SharedRows<f64> = SharedRows::new(nchunks, 0.0);
    let center = AtomicUsize::new(first);
    let fill = AtomicBool::new(true);
    let stop = AtomicBool::new(false);
    // Workers + the coordinating caller.
    let barrier = Barrier::new(nthreads + 1);

    std::thread::scope(|s| {
        for t in 0..nthreads {
            let (dist2, chunk_sums) = (&dist2, &chunk_sums);
            let (center, fill, stop, barrier) = (&center, &fill, &stop, &barrier);
            s.spawn(move || loop {
                barrier.wait(); // A — round published by the coordinator
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let cv = data.row(center.load(Ordering::Acquire));
                let filling = fill.load(Ordering::Acquire);
                let mut ci = t;
                while ci < nchunks {
                    let base = ci * PP_CHUNK;
                    let end = (base + PP_CHUNK).min(n);
                    let mut sum = 0.0;
                    for i in base..end {
                        let sq = sqdist(data.row(i), cv);
                        // Safety: chunk `ci` is owned by worker `ci %
                        // nthreads` for this round; barriers A/B order the
                        // writes against the coordinator's reads.
                        let dv = unsafe { dist2.get_mut(i) };
                        if filling || sq < *dv {
                            *dv = sq;
                        }
                        sum += *dv;
                    }
                    unsafe { *chunk_sums.get_mut(ci) = sum };
                    ci += nthreads;
                }
                barrier.wait(); // B — scan complete
            });
        }

        for chosen in 1..k {
            barrier.wait(); // A — release the scan for the current center
            barrier.wait(); // B — all chunk slots final
            fill.store(false, Ordering::Release);
            // Safety (all reads below): workers idle at barrier A.
            let total: f64 = (0..nchunks).map(|ci| unsafe { *chunk_sums.get(ci) }).sum();
            let next = if total <= 0.0 {
                rng.gen_range(0..n) // all points coincide with a center
            } else {
                let t0 = rng.gen::<f64>() * total;
                pp_pick(
                    n,
                    nchunks,
                    t0,
                    |i| unsafe { *dist2.get(i) },
                    |ci| unsafe { *chunk_sums.get(ci) },
                )
            };
            c.means[chosen * d..(chosen + 1) * d].copy_from_slice(data.row(next));
            center.store(next, Ordering::Release);
        }
        stop.store(true, Ordering::Release);
        barrier.wait(); // final A — workers observe stop and exit
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DMatrix {
        DMatrix::from_vec(
            vec![0.0, 0.0, 0.1, 0.1, 10.0, 10.0, 10.1, 9.9, -10.0, 0.0, -10.1, 0.1],
            6,
            2,
        )
    }

    #[test]
    fn forgy_picks_distinct_rows() {
        let data = toy();
        let c = InitMethod::Forgy.initialize(&data, 3, 7);
        // Every centroid equals some data row.
        for i in 0..3 {
            assert!((0..6).any(|r| data.row(r) == c.mean(i)));
        }
        // Distinct.
        assert!(c.mean(0) != c.mean(1) && c.mean(1) != c.mean(2) && c.mean(0) != c.mean(2));
    }

    #[test]
    fn plus_plus_spreads_centers() {
        let data = toy();
        let c = InitMethod::PlusPlus.initialize(&data, 3, 3);
        // Centers must come from different natural blobs with overwhelming
        // probability: pairwise distances all large.
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(sqdist(c.mean(i), c.mean(j)) > 1.0, "centers {i},{j} too close");
            }
        }
    }

    #[test]
    fn random_partition_centroids_near_global_mean() {
        let data = toy();
        let c = InitMethod::RandomPartition.initialize(&data, 2, 11);
        assert_eq!(c.k(), 2);
        for i in 0..2 {
            assert!(c.mean(i).iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn given_passes_through() {
        let data = toy();
        let m = DMatrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let c = InitMethod::Given(m.clone()).initialize(&data, 2, 0);
        assert_eq!(c.to_matrix(), m);
    }

    #[test]
    #[should_panic]
    fn given_shape_checked() {
        let data = toy();
        let m = DMatrix::from_vec(vec![1.0, 2.0], 1, 2);
        let _ = InitMethod::Given(m).initialize(&data, 2, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = toy();
        for m in [InitMethod::Forgy, InitMethod::PlusPlus, InitMethod::RandomPartition] {
            let a = m.initialize(&data, 3, 5);
            let b = m.initialize(&data, 3, 5);
            assert_eq!(a.means, b.means, "{m:?} not deterministic");
        }
    }

    #[test]
    fn plusplus_parallel_picks_identical_to_serial() {
        // Spans multiple PP_CHUNK chunks so the parallel fan-out is real;
        // every thread count must reproduce the serial scan's picks
        // bit for bit (the chunk grid never depends on the thread count).
        let data = knor_workloads::uniform_matrix(3 * PP_CHUNK + 517, 6, 77);
        for k in [2usize, 7, 16] {
            for seed in [0u64, 9, 123] {
                let serial = InitMethod::PlusPlus.initialize_parallel(&data, k, seed, 1);
                for threads in [2usize, 3, 8] {
                    let par = InitMethod::PlusPlus.initialize_parallel(&data, k, seed, threads);
                    assert_eq!(
                        serial.means, par.means,
                        "k={k} seed={seed} threads={threads}: picks diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn plusplus_single_chunk_matches_legacy_scan() {
        // For n <= PP_CHUNK the chunked selection degenerates to the
        // classic fully-serial D² scan — verified against an inline
        // replica of the pre-parallel implementation.
        let data = knor_workloads::uniform_matrix(800, 5, 31);
        let (n, d, k, seed) = (800usize, 5usize, 6usize, 4u64);
        let legacy = {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut c = Centroids::zeros(k, d);
            let first = rng.gen_range(0..n);
            c.means[0..d].copy_from_slice(data.row(first));
            let mut dist2: Vec<f64> =
                (0..n).map(|i| sqdist(data.row(i), data.row(first))).collect();
            for chosen in 1..k {
                let total: f64 = dist2.iter().sum();
                let next = if total <= 0.0 {
                    rng.gen_range(0..n)
                } else {
                    let mut target = rng.gen::<f64>() * total;
                    let mut pick = n - 1;
                    for (i, &w) in dist2.iter().enumerate() {
                        target -= w;
                        if target <= 0.0 {
                            pick = i;
                            break;
                        }
                    }
                    pick
                };
                c.means[chosen * d..(chosen + 1) * d].copy_from_slice(data.row(next));
                if chosen + 1 < k {
                    for (i, cur) in dist2.iter_mut().enumerate() {
                        let s = sqdist(data.row(i), data.row(next));
                        if s < *cur {
                            *cur = s;
                        }
                    }
                }
            }
            c
        };
        let now = InitMethod::PlusPlus.initialize(&data, k, seed);
        assert_eq!(legacy.means, now.means);
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let s = sample_distinct(&mut rng, 20, 10);
            let mut t = s.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 10);
            assert!(t.iter().all(|&x| x < 20));
        }
    }
}
