//! Centroid initialization: random partition, Forgy, k-means++ and
//! user-provided seeds.

use crate::centroids::Centroids;
use crate::distance::sqdist;
use knor_matrix::DMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Initialization strategy for the first iteration's centroids.
#[derive(Debug, Clone, PartialEq)]
pub enum InitMethod {
    /// Assign every point to a random cluster and take the means
    /// (knor's `random` init).
    RandomPartition,
    /// Pick `k` distinct random rows as the initial centroids
    /// (knor's `forgy` init).
    Forgy,
    /// k-means++ D²-weighted seeding (knor's `kmeanspp` init).
    PlusPlus,
    /// Explicit `k x d` means supplied by the caller (knor's `none` init —
    /// used by every cross-module equivalence test in this repo).
    Given(DMatrix),
}

impl InitMethod {
    /// Compute initial centroids for `data` with `k` clusters.
    ///
    /// # Panics
    /// Panics if `k` is zero, `k > n`, or (for [`InitMethod::Given`]) the
    /// supplied matrix shape is not `k x d`.
    pub fn initialize(&self, data: &DMatrix, k: usize, seed: u64) -> Centroids {
        assert!(k >= 1, "k must be positive");
        assert!(k <= data.nrow(), "k = {k} exceeds n = {}", data.nrow());
        let d = data.ncol();
        match self {
            InitMethod::Given(m) => {
                assert_eq!((m.nrow(), m.ncol()), (k, d), "Given init has wrong shape");
                Centroids::from_matrix(m)
            }
            InitMethod::Forgy => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let rows = sample_distinct(&mut rng, data.nrow(), k);
                let mut c = Centroids::zeros(k, d);
                for (i, &r) in rows.iter().enumerate() {
                    c.means[i * d..(i + 1) * d].copy_from_slice(data.row(r));
                }
                c
            }
            InitMethod::RandomPartition => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut sums = vec![0.0f64; k * d];
                let mut counts = vec![0u64; k];
                for row in data.rows() {
                    let c = rng.gen_range(0..k);
                    for (s, x) in sums[c * d..(c + 1) * d].iter_mut().zip(row) {
                        *s += x;
                    }
                    counts[c] += 1;
                }
                let mut cents = Centroids::zeros(k, d);
                for c in 0..k {
                    if counts[c] == 0 {
                        // Degenerate (tiny n): fall back to a sample row.
                        let r = rng.gen_range(0..data.nrow());
                        cents.means[c * d..(c + 1) * d].copy_from_slice(data.row(r));
                    } else {
                        let inv = 1.0 / counts[c] as f64;
                        for j in 0..d {
                            cents.means[c * d + j] = sums[c * d + j] * inv;
                        }
                    }
                }
                cents
            }
            InitMethod::PlusPlus => plus_plus(data, k, seed),
        }
    }
}

fn sample_distinct<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    // Floyd's algorithm: k distinct samples in O(k) expected time.
    let mut chosen = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

fn plus_plus(data: &DMatrix, k: usize, seed: u64) -> Centroids {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = data.nrow();
    let d = data.ncol();
    let mut c = Centroids::zeros(k, d);
    let first = rng.gen_range(0..n);
    c.means[0..d].copy_from_slice(data.row(first));

    // dist2[i] = squared distance of row i to its nearest chosen center.
    let mut dist2: Vec<f64> = (0..n).map(|i| sqdist(data.row(i), data.row(first))).collect();
    for chosen in 1..k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n) // all points coincide with a center
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in dist2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        c.means[chosen * d..(chosen + 1) * d].copy_from_slice(data.row(next));
        if chosen + 1 < k {
            for (i, cur) in dist2.iter_mut().enumerate() {
                let s = sqdist(data.row(i), data.row(next));
                if s < *cur {
                    *cur = s;
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DMatrix {
        DMatrix::from_vec(
            vec![0.0, 0.0, 0.1, 0.1, 10.0, 10.0, 10.1, 9.9, -10.0, 0.0, -10.1, 0.1],
            6,
            2,
        )
    }

    #[test]
    fn forgy_picks_distinct_rows() {
        let data = toy();
        let c = InitMethod::Forgy.initialize(&data, 3, 7);
        // Every centroid equals some data row.
        for i in 0..3 {
            assert!((0..6).any(|r| data.row(r) == c.mean(i)));
        }
        // Distinct.
        assert!(c.mean(0) != c.mean(1) && c.mean(1) != c.mean(2) && c.mean(0) != c.mean(2));
    }

    #[test]
    fn plus_plus_spreads_centers() {
        let data = toy();
        let c = InitMethod::PlusPlus.initialize(&data, 3, 3);
        // Centers must come from different natural blobs with overwhelming
        // probability: pairwise distances all large.
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(sqdist(c.mean(i), c.mean(j)) > 1.0, "centers {i},{j} too close");
            }
        }
    }

    #[test]
    fn random_partition_centroids_near_global_mean() {
        let data = toy();
        let c = InitMethod::RandomPartition.initialize(&data, 2, 11);
        assert_eq!(c.k(), 2);
        for i in 0..2 {
            assert!(c.mean(i).iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn given_passes_through() {
        let data = toy();
        let m = DMatrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let c = InitMethod::Given(m.clone()).initialize(&data, 2, 0);
        assert_eq!(c.to_matrix(), m);
    }

    #[test]
    #[should_panic]
    fn given_shape_checked() {
        let data = toy();
        let m = DMatrix::from_vec(vec![1.0, 2.0], 1, 2);
        let _ = InitMethod::Given(m).initialize(&data, 2, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = toy();
        for m in [InitMethod::Forgy, InitMethod::PlusPlus, InitMethod::RandomPartition] {
            let a = m.initialize(&data, 3, 5);
            let b = m.initialize(&data, 3, 5);
            assert_eq!(a.means, b.means, "{m:?} not deterministic");
        }
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let s = sample_distinct(&mut rng, 20, 10);
            let mut t = s.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 10);
            assert!(t.iter().all(|&x| x < 20));
        }
    }
}
