//! Per-NUMA-node read replicas of the iteration state.
//!
//! Every assignment-phase read — centroid means, the norm-trick
//! `‖c‖²` cache, and the MTI ccdist/half-min/drift tables — goes through
//! [`crate::driver::IterView`]. With one shared copy, all workers on all
//! nodes pull those cache lines across the interconnect each iteration;
//! at the headline shape this is the hottest remaining remote-read path.
//! This module gives the driver one replica of that state per NUMA node,
//! allocated and first-touched by a worker *pinned to that node*, so
//! assignment-phase reads are node-local by construction. (The packed
//! GEMM panel needs no replica of its own: kernels pack it into
//! thread-local scratch from whatever centroids the view hands them, so
//! it inherits node locality from the replicated means.)
//!
//! The per-iteration merge stays canonical — the coordinator finalizes
//! one authoritative copy exactly as before — and replication becomes an
//! *op-log apply*: the coordinator's drift pass records which centroids
//! moved ([`OpLog`]), and after the coordinator window one designated
//! writer per node copies just the drifted means, their refreshed norms
//! and the touched ccdist rows/columns (plus the always-rewritten
//! drift/half-min vectors) into its node's replica, in canonical order.
//!
//! # Bitwise identity
//!
//! Replication must not change trajectories, so the delta rule is exactly
//! the canonical state's own update rule:
//!
//! * a zero-drift centroid's mean is *numerically* unchanged
//!   (`Σ(old_j − new_j)² = 0` forces every coordinate equal), so the
//!   replica's stale row can differ from the canonical row only in the
//!   sign of zero coordinates — and every consumer (squared distances,
//!   dot products accumulated from `+0.0`, strict-`<` argmin) is
//!   insensitive to that sign;
//! * the canonical `cnorms` cache itself refreshes only drifted entries,
//!   so copying exactly those keeps replica and canonical bitwise equal;
//! * a ccdist entry between two non-drifted centroids is recomputed by
//!   the canonical rebuild from numerically-identical operands, i.e. it
//!   is bitwise-stable, so only rows/columns of drifted centroids need
//!   copying (iteration 0 publishes in full to root the induction).
//!
//! The driver's barrier P orders the canonical writes against the node
//! writers' reads, and the next iteration's barrier A orders the
//! writers' stores against all node-local readers.

use crate::centroids::Centroids;
use crate::pruning::{MtiIterState, Pruning, YinyangState};
use crate::sync::ExclusiveCell;

/// The replication knob carried on every engine config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replication {
    /// Never replicate: all workers read the one shared copy.
    Off,
    /// Replicate when it can pay: the resolved topology has more than one
    /// NUMA node (and the engine is running NUMA-aware).
    #[default]
    Auto,
    /// Always replicate, even on a single node (testing / benchmarking).
    On,
}

impl Replication {
    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "off" => Replication::Off,
            "auto" => Replication::Auto,
            "on" => Replication::On,
            _ => return None,
        })
    }

    /// Canonical CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Replication::Off => "off",
            Replication::Auto => "auto",
            Replication::On => "on",
        }
    }

    /// Resolve the knob against a topology's node count. `Auto` replicates
    /// only when crossing the interconnect is possible at all. (Engines
    /// with a NUMA-oblivious mode additionally gate `Auto` on being
    /// NUMA-aware.)
    pub fn resolve(self, nodes: usize) -> bool {
        match self {
            Replication::Off => false,
            Replication::On => true,
            Replication::Auto => nodes > 1,
        }
    }
}

/// One node's replica of the read-shared iteration state.
#[derive(Debug, Clone)]
pub struct ReplicaState {
    /// Node-local copy of the current centroids (`C^t`).
    pub cents: Centroids,
    /// Node-local copy of the norm-trick `‖c‖²` cache (empty when the
    /// resolved kernel does not use it).
    pub cnorms: Vec<f64>,
    /// Node-local copy of the MTI ccdist/half-min/drift tables (zero-sized
    /// and never read unless the scheme is MTI).
    pub mti: MtiIterState,
    /// Node-local copy of the Yinyang grouping + drift state (zero-sized
    /// and never read unless the scheme is Yinyang; the grouping tables
    /// are immutable after install, only the drifts are re-published).
    pub yy: YinyangState,
}

impl ReplicaState {
    /// Clone the canonical state. Called by the node writer *on its bound
    /// thread* before the first iteration, so first-touch places the
    /// replica's pages on the writer's node.
    pub fn from_canonical(
        cents: &Centroids,
        cnorms: &[f64],
        mti: &MtiIterState,
        yy: &YinyangState,
    ) -> Self {
        Self { cents: cents.clone(), cnorms: cnorms.to_vec(), mti: mti.clone(), yy: yy.clone() }
    }

    /// Apply one iteration's op-log: copy the drifted means, their
    /// refreshed norms and the touched ccdist rows/columns (plus the
    /// always-rewritten counts, drift and half-min vectors; under Yinyang
    /// the per-centroid and per-group drift vectors) from the canonical
    /// state. Returns the bytes copied — by construction equal to
    /// [`OpLog::bytes_per_node`] for the same shapes.
    pub fn apply(
        &mut self,
        log: &OpLog,
        cents: &Centroids,
        cnorms: &[f64],
        mti: Option<&MtiIterState>,
        yy: Option<&YinyangState>,
    ) -> u64 {
        let k = cents.k();
        let d = cents.d;
        let mut bytes = (k * 8) as u64;
        self.cents.counts.copy_from_slice(&cents.counts);
        if log.full {
            self.cents.means.copy_from_slice(&cents.means);
            bytes += (k * d * 8) as u64;
        } else {
            for &c in &log.drifted {
                self.cents.means[c * d..(c + 1) * d].copy_from_slice(cents.mean(c));
            }
            bytes += (log.drifted.len() * d * 8) as u64;
        }
        if !cnorms.is_empty() {
            if log.full {
                self.cnorms.copy_from_slice(cnorms);
                bytes += (k * 8) as u64;
            } else {
                for &c in &log.drifted {
                    self.cnorms[c] = cnorms[c];
                }
                bytes += (log.drifted.len() * 8) as u64;
            }
        }
        if let Some(m) = mti {
            // Drift and half-min are rewritten for every centroid each
            // iteration; copy them whole.
            self.mti.drift.copy_from_slice(&m.drift);
            self.mti.half_min.copy_from_slice(&m.half_min);
            bytes += (2 * k * 8) as u64;
            if log.copies_full_ccdist(k) {
                self.mti.ccdist.copy_from_slice(&m.ccdist);
                bytes += (k * k * 8) as u64;
            } else {
                for &c in &log.drifted {
                    self.mti.ccdist[c * k..(c + 1) * k]
                        .copy_from_slice(&m.ccdist[c * k..(c + 1) * k]);
                    for i in 0..k {
                        self.mti.ccdist[i * k + c] = m.ccdist[i * k + c];
                    }
                }
                bytes += (2 * log.drifted.len() * k * 8) as u64;
            }
        }
        if let Some(y) = yy {
            // Drift and group drift are rewritten each iteration; the
            // grouping tables were installed once and never change.
            self.yy.drift.copy_from_slice(&y.drift);
            self.yy.group_drift.copy_from_slice(&y.group_drift);
            bytes += ((y.drift.len() + y.group_drift.len()) * 8) as u64;
        }
        bytes
    }
}

/// The canonical delta of one iteration, recorded by the coordinator's
/// drift pass and applied to every node replica by its node writer.
#[derive(Debug, Default)]
pub struct OpLog {
    /// Centroids whose drift was non-zero this iteration.
    pub drifted: Vec<usize>,
    /// Publish everything (iteration 0 roots the bitwise induction on a
    /// full copy).
    pub full: bool,
}

impl OpLog {
    /// Start recording a new iteration's delta.
    pub fn begin(&mut self, full: bool) {
        self.drifted.clear();
        self.full = full;
    }

    /// Record a drifted centroid (ascending order: the coordinator's
    /// drift pass runs `c = 0..k`).
    #[inline]
    pub fn record(&mut self, c: usize) {
        self.drifted.push(c);
    }

    /// Whether the ccdist copy degenerates to the full matrix (row+column
    /// copies would touch at least as many elements).
    #[inline]
    pub fn copies_full_ccdist(&self, k: usize) -> bool {
        self.full || 2 * self.drifted.len() >= k
    }

    /// Bytes [`ReplicaState::apply`] copies into *one* node replica for
    /// this delta (the `--stats` publish accounting multiplies by the
    /// populated node count). `ngroups` is the Yinyang group count `t`
    /// (ignored for other schemes).
    pub fn bytes_per_node(
        &self,
        k: usize,
        d: usize,
        scheme: Pruning,
        ngroups: usize,
        has_cnorms: bool,
    ) -> u64 {
        let nd = if self.full { k } else { self.drifted.len() };
        let mut bytes = (k * 8) as u64; // counts
        bytes += (nd * d * 8) as u64; // means
        if has_cnorms {
            bytes += (nd * 8) as u64;
        }
        match scheme {
            Pruning::None => {}
            Pruning::Mti => {
                bytes += (2 * k * 8) as u64; // drift + half_min
                bytes += if self.copies_full_ccdist(k) {
                    (k * k * 8) as u64
                } else {
                    (2 * self.drifted.len() * k * 8) as u64
                };
            }
            Pruning::Yinyang => {
                bytes += ((k + ngroups) * 8) as u64; // drift + group_drift
            }
        }
        bytes
    }
}

/// The per-node replica slots, owned by one driver run. Slot `node` is
/// written by that node's designated writer (installation before the
/// first barrier A, op-log applies between barriers P and A) and read by
/// that node's workers during the compute super-phase — the same manual
/// barrier discipline as [`ExclusiveCell`] everywhere else in the driver.
pub struct NodeReplicas {
    slots: Vec<ExclusiveCell<Option<ReplicaState>>>,
}

impl NodeReplicas {
    /// Empty slots for `nnodes` nodes. Nodes without workers keep `None`
    /// forever (and are never read).
    pub fn new(nnodes: usize) -> Self {
        Self { slots: (0..nnodes.max(1)).map(|_| ExclusiveCell::new(None)).collect() }
    }

    /// Number of slots.
    pub fn nnodes(&self) -> usize {
        self.slots.len()
    }

    /// Exclusive access to a node's slot.
    ///
    /// # Safety
    /// Caller must be `node`'s designated writer, before the first
    /// barrier A or between barriers P and the next A.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot_mut(&self, node: usize) -> &mut Option<ReplicaState> {
        self.slots[node].get_mut()
    }

    /// Shared read access to a node's installed replica.
    ///
    /// # Safety
    /// Caller must be in a phase barrier-separated from the writer's
    /// installs/applies (between barriers A and P), and the slot must have
    /// been installed (the node has a writer).
    #[inline]
    pub unsafe fn get(&self, node: usize) -> &ReplicaState {
        self.slots[node].get().as_ref().expect("replica read before install")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::dist;

    fn cents(k: usize, d: usize, scale: f64) -> Centroids {
        let mut c = Centroids::zeros(k, d);
        for (i, x) in c.means.iter_mut().enumerate() {
            *x = (i as f64 * 0.37).sin() * scale;
        }
        for (i, n) in c.counts.iter_mut().enumerate() {
            *n = i as u64 + 1;
        }
        c
    }

    #[test]
    fn knob_parses_and_resolves() {
        assert_eq!(Replication::parse("off"), Some(Replication::Off));
        assert_eq!(Replication::parse("auto"), Some(Replication::Auto));
        assert_eq!(Replication::parse("on"), Some(Replication::On));
        assert_eq!(Replication::parse("maybe"), None);
        for r in [Replication::Off, Replication::Auto, Replication::On] {
            assert_eq!(Replication::parse(r.name()), Some(r));
        }
        assert!(!Replication::Off.resolve(4));
        assert!(Replication::On.resolve(1));
        assert!(!Replication::Auto.resolve(1));
        assert!(Replication::Auto.resolve(2));
    }

    #[test]
    fn full_then_delta_applies_track_canonical() {
        let (k, d) = (6, 3);
        let c0 = cents(k, d, 1.0);
        let mut mti0 = MtiIterState::new(k);
        mti0.update(&c0.clone(), &c0);
        let mut cn0 = vec![0.0; k];
        crate::kernel::centroid_sqnorms(&c0, &mut cn0);

        let mut rep =
            ReplicaState::from_canonical(&c0, &cn0, &MtiIterState::new(k), &YinyangState::empty());
        // Iteration 0: full publish.
        let mut log = OpLog::default();
        log.begin(true);
        let bytes = rep.apply(&log, &c0, &cn0, Some(&mti0), None);
        assert_eq!(bytes, log.bytes_per_node(k, d, Pruning::Mti, 0, true));
        assert_eq!(rep.cents, c0);
        assert_eq!(rep.cnorms, cn0);
        assert_eq!(rep.mti.ccdist, mti0.ccdist);

        // Iteration 1: two centroids drift; delta apply must land the
        // replica bitwise on the canonical state.
        let mut c1 = c0.clone();
        for j in 0..d {
            c1.means[2 * d + j] += 0.25;
            c1.means[5 * d + j] -= 0.5;
        }
        c1.counts[0] += 3;
        let mut mti1 = mti0.clone();
        mti1.update(&c0, &c1);
        let mut cn1 = cn0.clone();
        for c in [2usize, 5] {
            cn1[c] = crate::kernel::sqnorm(c1.mean(c));
        }
        log.begin(false);
        for c in 0..k {
            if dist(c0.mean(c), c1.mean(c)) != 0.0 {
                log.record(c);
            }
        }
        assert_eq!(log.drifted, vec![2, 5]);
        let bytes = rep.apply(&log, &c1, &cn1, Some(&mti1), None);
        assert_eq!(bytes, log.bytes_per_node(k, d, Pruning::Mti, 0, true));
        assert_eq!(rep.cents, c1);
        assert_eq!(rep.cnorms, cn1);
        // The canonical rebuild recomputed every pair, but entries between
        // two non-drifted centroids are bitwise-stable — so touching only
        // the drifted rows/columns reproduces the whole matrix.
        assert_eq!(rep.mti.ccdist, mti1.ccdist);
        assert_eq!(rep.mti.half_min, mti1.half_min);
        assert_eq!(rep.mti.drift, mti1.drift);
    }

    #[test]
    fn ccdist_copy_degenerates_to_full_matrix() {
        let k = 4;
        let mut log = OpLog::default();
        log.begin(false);
        log.record(0);
        assert!(!log.copies_full_ccdist(k));
        log.record(1);
        assert!(log.copies_full_ccdist(k), "2·nd == k copies the matrix");
        // Accounting follows the same rule: counts + 2 drifted means of
        // d=2 + drift/half_min + full ccdist.
        let b = log.bytes_per_node(k, 2, Pruning::Mti, 0, false);
        assert_eq!(b, (k * 8 + 2 * 2 * 8 + 2 * k * 8 + k * k * 8) as u64);
    }

    #[test]
    fn bytes_skip_absent_structures() {
        let mut log = OpLog::default();
        log.begin(false);
        log.record(3);
        let (k, d) = (8, 4);
        // No pruning, no cnorms: counts + one mean row.
        assert_eq!(log.bytes_per_node(k, d, Pruning::None, 0, false), (k * 8 + d * 8) as u64);
        // cnorms adds one entry.
        assert_eq!(log.bytes_per_node(k, d, Pruning::None, 0, true), (k * 8 + d * 8 + 8) as u64);
        // Yinyang publishes the per-centroid + per-group drifts, never an
        // O(k²) matrix.
        let t = 2;
        assert_eq!(
            log.bytes_per_node(k, d, Pruning::Yinyang, t, false),
            (k * 8 + d * 8 + (k + t) * 8) as u64
        );
    }

    #[test]
    fn yinyang_delta_apply_tracks_canonical() {
        let (k, d) = (20, 3);
        let c0 = cents(k, d, 1.0);
        let mut canon = YinyangState::group(&c0);
        let mut state = ReplicaState::from_canonical(&c0, &[], &MtiIterState::new(0), &canon);
        // A later iteration's canonical drift pass…
        for (c, dr) in canon.drift.iter_mut().enumerate() {
            *dr = (c as f64 * 0.13).sin().abs();
        }
        canon.update_group_drift();
        // …lands bitwise on the replica through the O(k + t) delta.
        let mut log = OpLog::default();
        log.begin(false);
        let bytes = state.apply(&log, &c0, &[], None, Some(&canon));
        assert_eq!(bytes, log.bytes_per_node(k, d, Pruning::Yinyang, canon.t(), false));
        assert_eq!(state.yy.drift, canon.drift);
        assert_eq!(state.yy.group_drift, canon.group_drift);
        assert_eq!(state.yy.group_of, canon.group_of);
    }

    #[test]
    fn replicas_install_and_read() {
        let reps = NodeReplicas::new(2);
        assert_eq!(reps.nnodes(), 2);
        let c = cents(3, 2, 1.0);
        // Single-threaded stand-in for the barrier-ordered protocol.
        unsafe {
            *reps.slot_mut(1) = Some(ReplicaState::from_canonical(
                &c,
                &[],
                &MtiIterState::new(3),
                &YinyangState::empty(),
            ));
            assert_eq!(reps.get(1).cents, c);
        }
    }
}
