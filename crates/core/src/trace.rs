//! The unified tracing layer: a low-overhead, always-compiled-but-off-by-
//! default span recorder shared by every engine.
//!
//! The paper's whole argument is about *where time goes* — interconnect
//! reads, barrier waits, I/O stalls — so the recorder instruments the one
//! seam every engine shares: the driver's barrier protocol. A run that
//! wants tracing hands the engine an `Arc<`[`TraceBuf`]`>`; the driver
//! registers one [`TraceGroup`] per run (per rank under knord) and each
//! worker records [`Span`]s into its own pre-allocated ring. With no
//! buffer attached the hot path is a single `Option` branch and zero
//! allocation — the discipline `tests/alloc.rs` enforces.
//!
//! Design properties (DESIGN.md §13):
//!
//! * **Per-worker rings, lock-free.** Each worker writes only its own
//!   slot ([`ExclusiveCell`] discipline, same as the driver's
//!   accumulators); no atomics or locks on the record path. Rings are
//!   pre-allocated at registration; recording never allocates.
//! * **Drop-on-full.** A full ring drops new spans and counts them
//!   ([`PhaseBreakdown::dropped`]); it never blocks, reallocates or
//!   overwrites — a long run degrades to a truncated timeline, not a
//!   slow or corrupted one.
//! * **Measurement-only.** The recorder reads clocks and writes private
//!   rings; it feeds nothing back into iteration state, so trajectories
//!   are bitwise identical with tracing on or off (asserted by the
//!   cross-engine tests in `tests/trace.rs`).
//!
//! Spans fold into two outputs: a [`PhaseBreakdown`] (per-phase ns per
//! worker, straggler spread) surfaced on every result type, and a
//! chrome-trace JSON export ([`TraceBuf::chrome_trace_json`]) that opens
//! directly in a trace viewer — one track per worker.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::sync::ExclusiveCell;

/// Default ring capacity, in spans per worker. The driver records ~10
/// spans per worker per iteration, so this covers ~1,600 iterations
/// before the drop policy engages (~640 KB per worker at 40 B/span).
pub const DEFAULT_RING_SPANS: usize = 16 * 1024;

/// Everything one recorded interval carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Worker thread (track) id within the group, offset by the group's
    /// `tid_base`.
    pub worker: u32,
    /// NUMA node the worker was bound to.
    pub numa_node: u32,
    /// What the interval was spent on.
    pub phase: Phase,
    /// Iteration the interval belongs to (0 for non-iterative spans).
    pub iter: u32,
    /// Interval start, ns since the [`TraceBuf`] origin.
    pub t_start: u64,
    /// Interval end, ns since the [`TraceBuf`] origin.
    pub t_end: u64,
    /// Bytes moved during the interval (0 where it does not apply).
    pub bytes: u64,
}

impl Span {
    /// Interval length in ns (saturating — clock monotonicity is assumed
    /// but not enforced).
    pub fn dur_ns(&self) -> u64 {
        self.t_end.saturating_sub(self.t_start)
    }
}

/// What a span was spent on. The driver phases mirror the barrier
/// protocol's letters (see `crate::driver` module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The compute super-phase (backend row drain).
    Compute,
    /// Waiting at barrier A (iteration start; state published).
    BarrierA,
    /// Waiting at barrier B (accumulators final).
    BarrierB,
    /// Waiting at barrier C (merged sums complete).
    BarrierC,
    /// Waiting at barrier D (parallel-ccdist centroids published).
    BarrierD,
    /// Waiting at barrier E (distance matrix complete).
    BarrierE,
    /// Waiting at barrier P (replica publish ordering).
    BarrierP,
    /// The dimension-sliced accumulator merge between B and C.
    Merge,
    /// The coordinator window (reduce, finalize, drift, MTI, stats).
    Update,
    /// The parallel centroid-distance triangle fill between D and E.
    CcDist,
    /// A node writer applying the op-log to its replica (after P).
    Publish,
    /// Staged-plane prefetch hand-off for an upcoming task.
    IoFetch,
    /// Staged-plane fast-tier (row cache) hits copied into staging.
    IoHit,
    /// Staged-plane merged backing-tier (device) fetch of the misses.
    IoMiss,
    /// Staged-plane scatter of fetched rows into task-order slots.
    IoScatter,
    /// knord's allreduce window (bytes = wire bytes this rank sent).
    Allreduce,
}

impl Phase {
    /// Every phase, for exhaustive folds and name lookups.
    pub const ALL: [Phase; 16] = [
        Phase::Compute,
        Phase::BarrierA,
        Phase::BarrierB,
        Phase::BarrierC,
        Phase::BarrierD,
        Phase::BarrierE,
        Phase::BarrierP,
        Phase::Merge,
        Phase::Update,
        Phase::CcDist,
        Phase::Publish,
        Phase::IoFetch,
        Phase::IoHit,
        Phase::IoMiss,
        Phase::IoScatter,
        Phase::Allreduce,
    ];

    /// Stable name (chrome-trace event name, smoke-check key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::BarrierA => "barrier_a",
            Phase::BarrierB => "barrier_b",
            Phase::BarrierC => "barrier_c",
            Phase::BarrierD => "barrier_d",
            Phase::BarrierE => "barrier_e",
            Phase::BarrierP => "barrier_p",
            Phase::Merge => "merge",
            Phase::Update => "update",
            Phase::CcDist => "ccdist",
            Phase::Publish => "publish",
            Phase::IoFetch => "io_fetch",
            Phase::IoHit => "io_hit",
            Phase::IoMiss => "io_miss",
            Phase::IoScatter => "io_scatter",
            Phase::Allreduce => "allreduce",
        }
    }

    /// The breakdown bucket this phase folds into.
    pub fn group(self) -> PhaseGroup {
        match self {
            Phase::Compute | Phase::IoHit => PhaseGroup::Compute,
            Phase::BarrierA
            | Phase::BarrierB
            | Phase::BarrierC
            | Phase::BarrierD
            | Phase::BarrierE
            | Phase::BarrierP => PhaseGroup::BarrierWait,
            Phase::IoFetch | Phase::IoMiss | Phase::Allreduce => PhaseGroup::IoWait,
            Phase::Merge | Phase::Update | Phase::CcDist => PhaseGroup::Merge,
            Phase::Publish | Phase::IoScatter => PhaseGroup::Publish,
        }
    }
}

/// The five summary buckets of a [`PhaseBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseGroup {
    /// Useful work: row drains, kernel dispatch, fast-tier copies.
    Compute,
    /// Time parked at a protocol barrier (straggler exposure).
    BarrierWait,
    /// Device reads, prefetch hand-offs, allreduce wire time.
    IoWait,
    /// Accumulator merge, coordinator update window, ccdist fill.
    Merge,
    /// Replica publishes and staging scatters.
    Publish,
}

impl PhaseGroup {
    /// Every group, in display order.
    pub const ALL: [PhaseGroup; 5] = [
        PhaseGroup::Compute,
        PhaseGroup::BarrierWait,
        PhaseGroup::IoWait,
        PhaseGroup::Merge,
        PhaseGroup::Publish,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PhaseGroup::Compute => "compute",
            PhaseGroup::BarrierWait => "barrier_wait",
            PhaseGroup::IoWait => "io_wait",
            PhaseGroup::Merge => "merge",
            PhaseGroup::Publish => "publish",
        }
    }

    fn index(self) -> usize {
        match self {
            PhaseGroup::Compute => 0,
            PhaseGroup::BarrierWait => 1,
            PhaseGroup::IoWait => 2,
            PhaseGroup::Merge => 3,
            PhaseGroup::Publish => 4,
        }
    }
}

/// One worker's pre-allocated span ring.
struct Ring {
    spans: Vec<Span>,
    dropped: u64,
}

/// One registered run (one driver invocation; one rank under knord): a
/// block of per-worker rings sharing a chrome-trace `pid` and a `tid`
/// base.
pub struct TraceGroup {
    origin: Instant,
    pid: u32,
    tid_base: u32,
    rings: Box<[ExclusiveCell<Ring>]>,
}

impl TraceGroup {
    /// Nanoseconds since the owning buffer's origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Claim worker `w`'s recording slot for this thread.
    ///
    /// # Safety
    /// Only worker `w`'s thread may hold (or copy) the returned tracer,
    /// and only while no other thread reads the group's rings — the same
    /// slot discipline as the driver's per-worker accumulators. Reads
    /// ([`TraceBuf::spans`] etc.) must be barrier-separated from all
    /// recording (in practice: after the worker scope joins).
    #[inline]
    pub unsafe fn tracer(&self, w: usize, node: u32, iter: u32) -> WorkerTracer<'_> {
        WorkerTracer { group: self, w, node, iter }
    }

    /// Fold this group's spans alone into a [`PhaseBreakdown`] (a single
    /// driver run's view; [`TraceBuf::breakdown`] folds every group).
    ///
    /// As with [`TraceBuf::spans`], call only after all recording threads
    /// have joined.
    pub fn breakdown(&self) -> PhaseBreakdown {
        let mut spans = Vec::new();
        let dropped = self.collect_into(&mut spans);
        let tracks = (0..self.rings.len()).map(|w| (self.pid, self.tid_base + w as u32)).collect();
        PhaseBreakdown::fold(&spans, tracks, dropped)
    }

    fn collect_into(&self, out: &mut Vec<Span>) -> u64 {
        let mut dropped = 0;
        for cell in self.rings.iter() {
            // Safety: called only after all recording threads joined.
            let ring = unsafe { cell.get() };
            out.extend_from_slice(&ring.spans);
            dropped += ring.dropped;
        }
        dropped
    }
}

/// A worker's handle for recording spans: the group, the slot, and the
/// ambient `{worker, node, iter}` tags every span carries.
#[derive(Clone, Copy)]
pub struct WorkerTracer<'a> {
    group: &'a TraceGroup,
    w: usize,
    node: u32,
    iter: u32,
}

impl WorkerTracer<'_> {
    /// Nanoseconds since the buffer origin (span start stamps).
    #[inline]
    pub fn now(&self) -> u64 {
        self.group.now_ns()
    }

    /// Record a span from `t_start` to now. Never allocates; a full ring
    /// drops the span and counts it.
    #[inline]
    pub fn record(&self, phase: Phase, t_start: u64, bytes: u64) {
        self.record_span(phase, t_start, self.group.now_ns(), bytes);
    }

    /// Record a fully-stamped span.
    #[inline]
    pub fn record_span(&self, phase: Phase, t_start: u64, t_end: u64, bytes: u64) {
        // Safety: slot-exclusive by the `tracer()` contract.
        let ring = unsafe { self.group.rings[self.w].get_mut() };
        if ring.spans.len() < ring.spans.capacity() {
            ring.spans.push(Span {
                worker: self.group.tid_base + self.w as u32,
                numa_node: self.node,
                phase,
                iter: self.iter,
                t_start,
                t_end,
                bytes,
            });
        } else {
            ring.dropped += 1;
        }
    }
}

/// The shared recorder: a monotonic time origin plus every group
/// registered against it. One buffer spans a whole run — knord's ranks
/// all register here, so their spans share a timebase.
pub struct TraceBuf {
    origin: Instant,
    ring_spans: usize,
    groups: Mutex<Vec<Arc<TraceGroup>>>,
}

impl Default for TraceBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for TraceBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let groups = self.groups.lock().expect("trace registry poisoned").len();
        f.debug_struct("TraceBuf")
            .field("ring_spans", &self.ring_spans)
            .field("groups", &groups)
            .finish()
    }
}

impl TraceBuf {
    /// A recorder with the default per-worker ring capacity.
    pub fn new() -> Self {
        Self::with_ring_spans(DEFAULT_RING_SPANS)
    }

    /// A recorder whose rings hold `spans` spans per worker.
    pub fn with_ring_spans(spans: usize) -> Self {
        Self { origin: Instant::now(), ring_spans: spans.max(16), groups: Mutex::new(Vec::new()) }
    }

    /// Nanoseconds since the recorder's origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Register a run of `nworkers` workers under chrome-trace process id
    /// `pid`, with worker `w` shown as track `tid_base + w`. All ring
    /// allocation happens here, before any recording.
    pub fn register(&self, pid: u32, nworkers: usize, tid_base: u32) -> Arc<TraceGroup> {
        let rings = (0..nworkers.max(1))
            .map(|_| {
                ExclusiveCell::new(Ring { spans: Vec::with_capacity(self.ring_spans), dropped: 0 })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let group = Arc::new(TraceGroup { origin: self.origin, pid, tid_base, rings });
        self.groups.lock().expect("trace registry poisoned").push(Arc::clone(&group));
        group
    }

    /// Snapshot every recorded span, in (group, worker, record) order.
    ///
    /// Must only be called once all recording threads have finished (the
    /// rings are read without synchronization beyond the thread joins).
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for g in self.groups.lock().expect("trace registry poisoned").iter() {
            g.collect_into(&mut out);
        }
        out
    }

    /// Spans dropped across all rings (the drop-on-full policy's tally).
    pub fn dropped(&self) -> u64 {
        let mut dropped = 0;
        for g in self.groups.lock().expect("trace registry poisoned").iter() {
            for cell in g.rings.iter() {
                // Safety: post-run read, as `spans()`.
                dropped += unsafe { cell.get() }.dropped;
            }
        }
        dropped
    }

    /// Fold every group's spans into one [`PhaseBreakdown`].
    pub fn breakdown(&self) -> PhaseBreakdown {
        let groups = self.groups.lock().expect("trace registry poisoned");
        let mut spans = Vec::new();
        let mut dropped = 0;
        let mut tracks: Vec<(u32, u32)> = Vec::new();
        for g in groups.iter() {
            dropped += g.collect_into(&mut spans);
            for w in 0..g.rings.len() {
                tracks.push((g.pid, g.tid_base + w as u32));
            }
        }
        PhaseBreakdown::fold(&spans, tracks, dropped)
    }

    /// Render every recorded span as chrome trace-event JSON (the
    /// `--trace <file>.json` payload): one `"X"` (complete) event per
    /// span, `pid` = group (knord rank), `tid` = worker track, plus
    /// thread-name metadata so viewers label the tracks.
    pub fn chrome_trace_json(&self) -> String {
        let groups = self.groups.lock().expect("trace registry poisoned");
        let mut out = String::with_capacity(64 * 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for g in groups.iter() {
            for (w, cell) in g.rings.iter().enumerate() {
                let tid = g.tid_base + w as u32;
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                     \"args\":{{\"name\":\"worker {}\"}}}}",
                    g.pid, tid, tid
                ));
                // Safety: post-run read, as `spans()`.
                for s in unsafe { cell.get() }.spans.iter() {
                    out.push_str(&format!(
                        ",{{\"name\":\"{}\",\"cat\":\"knor\",\"ph\":\"X\",\"ts\":{:.3},\
                         \"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"iter\":{},\
                         \"bytes\":{},\"node\":{}}}}}",
                        s.phase.name(),
                        s.t_start as f64 / 1e3,
                        s.dur_ns() as f64 / 1e3,
                        g.pid,
                        tid,
                        s.iter,
                        s.bytes,
                        s.numa_node,
                    ));
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// The per-phase fold of a run's spans: total ns per worker track for
/// each [`PhaseGroup`], plus the straggler spread (max − median over
/// tracks) that makes load imbalance visible without opening the trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// The `(pid, tid)` identity of each track, in column order.
    pub tracks: Vec<(u32, u32)>,
    /// `ns[group][track]` — total span ns, indexed by
    /// [`PhaseGroup::ALL`] order then by `tracks` order.
    pub ns: Vec<Vec<u64>>,
    /// Straggler spread per group: `max − median` of the per-track
    /// totals.
    pub spread_ns: Vec<u64>,
    /// Spans folded into this breakdown.
    pub spans: u64,
    /// Spans lost to the drop-on-full ring policy.
    pub dropped: u64,
}

impl PhaseBreakdown {
    /// Fold `spans` belonging to `tracks` into per-group totals.
    pub fn fold(spans: &[Span], tracks: Vec<(u32, u32)>, dropped: u64) -> Self {
        // Track order is the registration order; map (pid, tid) -> column
        // by scanning (track counts are small: workers, not rows).
        let col = |worker: u32| tracks.iter().position(|&(_, t)| t == worker);
        let mut ns = vec![vec![0u64; tracks.len()]; PhaseGroup::ALL.len()];
        for s in spans {
            // Spans from an unknown track (possible only if the caller
            // mixed buffers) are counted toward no column.
            if let Some(c) = col(s.worker) {
                ns[s.phase.group().index()][c] += s.dur_ns();
            }
        }
        let spread_ns = ns.iter().map(|row| spread(row)).collect();
        Self { tracks, ns, spread_ns, spans: spans.len() as u64, dropped }
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans == 0
    }

    /// Total ns across all tracks for one group.
    pub fn group_total_ns(&self, g: PhaseGroup) -> u64 {
        self.ns[g.index()].iter().sum()
    }

    /// The per-track total for one group.
    pub fn group_ns(&self, g: PhaseGroup) -> &[u64] {
        &self.ns[g.index()]
    }

    /// Straggler spread (max − median over tracks) for one group.
    pub fn group_spread_ns(&self, g: PhaseGroup) -> u64 {
        self.spread_ns[g.index()]
    }

    /// The `--stats` table: one row per phase group with total, max and
    /// spread (all in ms), over `tracks.len()` worker tracks.
    pub fn render(&self) -> String {
        let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
        let mut out = format!(
            "phase breakdown over {} worker track(s) ({} spans{}):\n",
            self.tracks.len(),
            self.spans,
            if self.dropped > 0 { format!(", {} dropped", self.dropped) } else { String::new() }
        );
        out.push_str(&format!(
            "{:>13} {:>12} {:>10} {:>10}\n",
            "phase", "total_ms", "max_ms", "spread_ms"
        ));
        for g in PhaseGroup::ALL {
            let row = self.group_ns(g);
            let max = row.iter().copied().max().unwrap_or(0);
            out.push_str(&format!(
                "{:>13} {:>12} {:>10} {:>10}\n",
                g.name(),
                ms(self.group_total_ns(g)),
                ms(max),
                ms(self.group_spread_ns(g)),
            ));
        }
        out
    }
}

/// `max − median` of a per-track total row (0 for empty rows).
fn spread(row: &[u64]) -> u64 {
    if row.is_empty() {
        return 0;
    }
    let mut sorted = row.to_vec();
    sorted.sort_unstable();
    let max = sorted[sorted.len() - 1];
    let median = sorted[sorted.len() / 2];
    max.saturating_sub(median)
}

/// What an engine hands the driver: the shared buffer plus the process
/// id (knord rank; 0 elsewhere) this run's groups register under.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    /// The shared recorder.
    pub buf: Arc<TraceBuf>,
    /// chrome-trace process id for this run's tracks.
    pub pid: u32,
}

impl TraceHandle {
    /// Wrap a buffer under pid 0 (single-machine engines).
    pub fn new(buf: Arc<TraceBuf>) -> Self {
        Self { buf, pid: 0 }
    }

    /// Wrap a buffer under an explicit pid (knord passes its rank).
    pub fn with_pid(buf: Arc<TraceBuf>, pid: u32) -> Self {
        Self { buf, pid }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_fold_and_spread() {
        let buf = TraceBuf::new();
        let g = buf.register(0, 2, 0);
        // Safety: single-threaded test; slots used one at a time.
        let t0 = unsafe { g.tracer(0, 0, 3) };
        let t1 = unsafe { g.tracer(1, 1, 3) };
        t0.record_span(Phase::Compute, 100, 400, 64);
        t1.record_span(Phase::Compute, 100, 200, 64);
        t0.record_span(Phase::BarrierB, 400, 410, 0);
        t1.record_span(Phase::BarrierB, 200, 410, 0);
        let b = buf.breakdown();
        assert_eq!(b.tracks, vec![(0, 0), (0, 1)]);
        assert_eq!(b.spans, 4);
        assert_eq!(b.dropped, 0);
        assert_eq!(b.group_ns(PhaseGroup::Compute), &[300, 100]);
        assert_eq!(b.group_ns(PhaseGroup::BarrierWait), &[10, 210]);
        // Two tracks: median = max -> spread = max - min here? No:
        // sorted [10, 210], median index 1 -> 210, spread 0 for the
        // upper; compute row sorted [100, 300] -> median 300, spread 0.
        assert_eq!(b.group_spread_ns(PhaseGroup::Compute), 0);
        assert_eq!(b.group_total_ns(PhaseGroup::Compute), 400);
        assert!(!b.render().is_empty());
    }

    #[test]
    fn spread_is_max_minus_median() {
        assert_eq!(spread(&[]), 0);
        assert_eq!(spread(&[5]), 0);
        // sorted [1, 2, 9]: median 2, max 9.
        assert_eq!(spread(&[9, 1, 2]), 7);
        // even count takes the upper median: sorted [1, 2, 3, 10],
        // median index 2 -> 3, spread 7.
        assert_eq!(spread(&[3, 10, 1, 2]), 7);
    }

    #[test]
    fn ring_drops_when_full_without_reallocating() {
        let buf = TraceBuf::with_ring_spans(16);
        let g = buf.register(0, 1, 0);
        // Safety: single-threaded test.
        let t = unsafe { g.tracer(0, 0, 0) };
        for i in 0..40u64 {
            t.record_span(Phase::Compute, i, i + 1, 0);
        }
        assert_eq!(buf.spans().len(), 16);
        assert_eq!(buf.dropped(), 24);
        let b = buf.breakdown();
        assert_eq!(b.dropped, 24);
        assert_eq!(b.spans, 16);
    }

    #[test]
    fn chrome_trace_shape() {
        let buf = TraceBuf::new();
        let g = buf.register(2, 1, 4);
        // Safety: single-threaded test.
        let t = unsafe { g.tracer(0, 1, 7) };
        t.record_span(Phase::Allreduce, 1_000, 3_500, 4096);
        let json = buf.chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"allreduce\""));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"tid\":4"), "tid_base offsets the track id");
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("\"bytes\":4096"));
        assert!(json.contains("\"iter\":7"));
    }

    #[test]
    fn phase_names_and_groups_are_total() {
        for p in Phase::ALL {
            assert!(!p.name().is_empty());
            let _ = p.group();
        }
        let names: std::collections::HashSet<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Phase::ALL.len(), "phase names must be unique");
    }
}
