//! Barrier-disciplined shared state for the engine.
//!
//! The ||Lloyd's iteration protocol gives worker 0 an exclusive window
//! (between the merge barrier and the next iteration's start barrier) in
//! which it finalizes centroids, drifts and the centroid–centroid distance
//! matrix while all other workers only touch their own private state. The
//! barriers establish the necessary happens-before edges; [`ExclusiveCell`]
//! is the minimal wrapper that lets that protocol be expressed without
//! per-access locking on the hot path.

use std::cell::UnsafeCell;

/// A cell written by exactly one thread during its exclusive window and
/// read by many threads only after a barrier separates them from the write.
///
/// # Safety contract
/// * `get_mut` may only be called by the coordinating thread, in a phase
///   where no other thread accesses the cell.
/// * `get` may only be called in phases separated from any `get_mut` by a
///   barrier (or other happens-before edge).
pub struct ExclusiveCell<T> {
    inner: UnsafeCell<T>,
}

// Safety: the discipline above ensures data-race freedom; Send bound keeps
// non-thread-safe interior types out.
unsafe impl<T: Send> Sync for ExclusiveCell<T> {}
unsafe impl<T: Send> Send for ExclusiveCell<T> {}

impl<T> ExclusiveCell<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self { inner: UnsafeCell::new(value) }
    }

    /// Shared read access.
    ///
    /// # Safety
    /// Caller must be in a phase barrier-separated from all writes.
    #[inline]
    pub unsafe fn get(&self) -> &T {
        &*self.inner.get()
    }

    /// Exclusive write access.
    ///
    /// # Safety
    /// Caller must be the coordinator inside its exclusive window.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self) -> &mut T {
        &mut *self.inner.get()
    }

    /// Consume the cell (single-threaded teardown).
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn coordinator_protocol() {
        let cell = ExclusiveCell::new(0u64);
        let barrier = Barrier::new(4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let cell = &cell;
                let barrier = &barrier;
                s.spawn(move || {
                    for round in 0..100u64 {
                        if t == 0 {
                            // Exclusive window for worker 0.
                            unsafe { *cell.get_mut() = round * 10 };
                        }
                        barrier.wait();
                        // Read phase: all workers observe the write.
                        assert_eq!(unsafe { *cell.get() }, round * 10);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(cell.into_inner(), 990);
    }
}
