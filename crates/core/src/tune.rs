//! The kernel autotuner.
//!
//! PR2's bench sweeps showed the best `(row_tile, cent_tile)` differs per
//! `(n, k, d)` shape — 64×64 at k=64,d=32 but 128×16 at k=16,d=16 — yet
//! the resolve-time heuristic hard-picks one shape from `d` alone. This
//! module probes a small candidate grid on a synthetic subsample at
//! startup and remembers the winner in a [`TuneTable`], which engines
//! carry on their configs so knori/knors/knord and serve's worker pool
//! all scan with the tuned tiles ([`DriverConfig::tiles`] ends up set
//! from here).
//!
//! Determinism contract: a probe is keyed only by `(kind, k, d, n-bucket,
//! seed)` — never by thread count (the probe itself is single-threaded)
//! — and candidates are swept in a fixed order with a strict-`<` winner
//! rule, so the pick is a pure function of the per-candidate cost
//! sequence. The default prober measures wall-clock over
//! seed-deterministic synthetic data; tests inject a deterministic cost
//! model through [`TuneTable::with_prober`].
//!
//! [`DriverConfig::tiles`]: crate::driver::DriverConfig

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::centroids::Centroids;
use crate::kernel::{assign_rows, centroid_sqnorms, KernelKind, ResolvedKernel, ResolvedKind};

/// The tuning policy knob (CLI `--tune on|off|cache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TunePolicy {
    /// No tuning: resolve-time heuristic tiles (the pre-tuner behaviour).
    #[default]
    Off,
    /// Probe at startup, remember in-process only.
    On,
    /// Probe at startup, persist fresh decisions to (and seed the table
    /// from) a cache file, so repeat runs skip the probe.
    Cache,
}

impl TunePolicy {
    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "off" => TunePolicy::Off,
            "on" => TunePolicy::On,
            "cache" => TunePolicy::Cache,
            _ => return None,
        })
    }
}

/// The shape a tuning decision is keyed by: the resolved kernel path,
/// exact `(k, d)`, and the magnitude (log₂ bucket) of `n` — a 1M-row run
/// reuses the decision of a 900k-row run, but not a 10k-row one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// Resolved kernel path the decision was probed for.
    pub kind: ResolvedKind,
    /// Number of clusters.
    pub k: usize,
    /// Dimensionality.
    pub d: usize,
    /// `⌊log₂ n⌋` of the row count.
    pub n_bucket: u32,
}

impl TuneKey {
    /// Key for a concrete shape.
    pub fn new(kind: ResolvedKind, n: usize, k: usize, d: usize) -> Self {
        Self { kind, k, d, n_bucket: n.max(1).ilog2() }
    }
}

/// One tuning decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileChoice {
    /// Rows staged per block.
    pub row_tile: usize,
    /// Centroids per inner tile.
    pub cent_tile: usize,
}

/// One probe request: evaluate the cost (lower is better) of scanning the
/// shape with the candidate tiles.
#[derive(Debug, Clone, Copy)]
pub struct ProbeCase {
    /// Resolved kernel path under test.
    pub kind: ResolvedKind,
    /// Row count of the real run (the probe subsamples this).
    pub n: usize,
    /// Number of clusters.
    pub k: usize,
    /// Dimensionality.
    pub d: usize,
    /// Probe seed (mixed into the synthetic data).
    pub seed: u64,
    /// Candidate rows per block.
    pub row_tile: usize,
    /// Candidate centroids per inner tile.
    pub cent_tile: usize,
}

/// Cost function the sweep minimizes. A plain `fn` pointer keeps
/// [`TuneTable`] trivially `Send + Sync` and lets tests swap in a
/// deterministic model.
pub type Prober = fn(&ProbeCase) -> f64;

/// Rows the wall-clock probe stages (capped by the real `n`).
const PROBE_ROWS: usize = 2048;

/// Timed repetitions per candidate (after one warm-up); min is taken.
const PROBE_REPS: usize = 2;

/// The candidate `(row_tile, cent_tile)` grid for a `(k, d)` shape: the
/// resolve-time heuristic first (ties keep it), then the sweep lattice
/// with centroid tiles capped at `k`, deduplicated in order.
pub fn candidate_grid(k: usize, d: usize) -> Vec<(usize, usize)> {
    let heuristic = KernelKind::Tiled.resolve(k, d, false);
    let mut out = vec![(heuristic.row_tile, heuristic.cent_tile)];
    for rt in [32usize, 64, 128] {
        for ct in [8usize, 16, 32, 64] {
            let cand = (rt, ct.min(k.max(1)));
            if !out.contains(&cand) {
                out.push(cand);
            }
        }
    }
    out
}

/// SplitMix64 step (the probe's seed-deterministic generator).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `len` doubles in `[-1, 1)`, fully determined by `seed`.
fn synth(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..len).map(|_| (splitmix64(&mut state) >> 11) as f64 / (1u64 << 52) as f64 - 1.0).collect()
}

/// The default prober: time [`assign_rows`] over a seed-deterministic
/// synthetic block (so every engine — including SEM, whose real rows live
/// on disk — probes identical work), one warm-up then best-of-`PROBE_REPS`.
fn wall_clock_prober(case: &ProbeCase) -> f64 {
    let d = case.d.max(1);
    let m = case.n.clamp(4, PROBE_ROWS);
    let base = case
        .seed
        .wrapping_add((case.k as u64) << 40)
        .wrapping_add((case.d as u64) << 20)
        .wrapping_add(m as u64);
    let block = synth(m * d, base ^ 0xA076_1D64_78BD_642F);
    let mut cents = Centroids::zeros(case.k, d);
    let means = synth(case.k * d, base ^ 0xE703_7ED1_A0B4_28DB);
    cents.means.copy_from_slice(&means);
    let mut cnorms = Vec::new();
    if case.kind.needs_cnorms() {
        cnorms.resize(case.k, 0.0);
        centroid_sqnorms(&cents, &mut cnorms);
    }
    let rk = ResolvedKernel { kind: case.kind, row_tile: 1, cent_tile: 1 }.with_tiles(
        case.row_tile,
        case.cent_tile,
        case.k,
    );
    let (mut best, mut dist) = (Vec::new(), Vec::new());
    let pass = |best: &mut Vec<u32>, dist: &mut Vec<f64>| {
        assign_rows(&block, d, &cents, &rk, &cnorms, best, dist, false)
    };
    pass(&mut best, &mut dist); // warm-up: page in, train the branch paths
    let mut ns = f64::INFINITY;
    for _ in 0..PROBE_REPS {
        let t = std::time::Instant::now();
        pass(&mut best, &mut dist);
        ns = ns.min(t.elapsed().as_nanos() as f64);
    }
    ns
}

/// The shared tuning decision table: shape key → tile choice, probed on
/// first demand and remembered. Cheap to share (`Arc`) across engines,
/// ranks and the serve pool.
#[derive(Debug)]
pub struct TuneTable {
    entries: Mutex<HashMap<TuneKey, TileChoice>>,
    prober: Prober,
}

impl TuneTable {
    /// Empty table with the wall-clock prober.
    pub fn new() -> Self {
        Self::with_prober(wall_clock_prober)
    }

    /// Empty table with an injected cost function (tests).
    pub fn with_prober(prober: Prober) -> Self {
        Self { entries: Mutex::new(HashMap::new()), prober }
    }

    /// The cached decision for a key, if any.
    pub fn lookup(&self, key: &TuneKey) -> Option<TileChoice> {
        self.entries.lock().expect("tune table poisoned").get(key).copied()
    }

    /// Record a decision (cache loads, tests).
    pub fn insert(&self, key: TuneKey, choice: TileChoice) {
        self.entries.lock().expect("tune table poisoned").insert(key, choice);
    }

    /// Number of remembered decisions.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("tune table poisoned").len()
    }

    /// Whether the table holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tiles for a shape: the cached decision when present, else sweep the
    /// candidate grid with the prober and remember the winner. The flag is
    /// true when this call ran the probe (a fresh decision the caller may
    /// want to persist). The winner rule is strict `<` over the fixed
    /// candidate order, so equal costs keep the earliest candidate.
    pub fn choose(
        &self,
        kind: ResolvedKind,
        n: usize,
        k: usize,
        d: usize,
        seed: u64,
    ) -> (TileChoice, bool) {
        let key = TuneKey::new(kind, n, k, d);
        if let Some(c) = self.lookup(&key) {
            return (c, false);
        }
        let mut best: Option<(f64, TileChoice)> = None;
        for (row_tile, cent_tile) in candidate_grid(k, d) {
            let cost = (self.prober)(&ProbeCase { kind, n, k, d, seed, row_tile, cent_tile });
            if best.is_none() || cost < best.expect("just checked").0 {
                best = Some((cost, TileChoice { row_tile, cent_tile }));
            }
        }
        let choice = best.expect("candidate grid is never empty").1;
        self.insert(key, choice);
        (choice, true)
    }

    /// Serialize every decision as the `knor-tune v1` text format, sorted
    /// for byte-stable output.
    pub fn to_text(&self) -> String {
        let map = self.entries.lock().expect("tune table poisoned");
        let mut lines: Vec<String> = map
            .iter()
            .map(|(key, c)| {
                format!(
                    "{} {} {} {} {} {}",
                    key.kind.name(),
                    key.k,
                    key.d,
                    key.n_bucket,
                    c.row_tile,
                    c.cent_tile
                )
            })
            .collect();
        lines.sort();
        let mut out = String::from("knor-tune v1\n");
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Merge decisions from serialized text into this table; returns how
    /// many entries were read. Malformed lines are a hard error — a
    /// corrupt cache should be deleted, not half-trusted.
    pub fn merge_text(&self, text: &str) -> io::Result<usize> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut lines = text.lines();
        match lines.next() {
            Some("knor-tune v1") => {}
            other => return Err(bad(format!("bad tune-cache header {other:?}"))),
        }
        let mut count = 0usize;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 6 {
                return Err(bad(format!("bad tune-cache line {line:?}")));
            }
            let kind = ResolvedKind::parse(fields[0])
                .ok_or_else(|| bad(format!("bad kernel kind {:?}", fields[0])))?;
            let num = |s: &str| s.parse::<usize>().map_err(|e| bad(format!("{s:?}: {e}")));
            let key = TuneKey {
                kind,
                k: num(fields[1])?,
                d: num(fields[2])?,
                n_bucket: num(fields[3])? as u32,
            };
            let choice = TileChoice { row_tile: num(fields[4])?, cent_tile: num(fields[5])? };
            self.insert(key, choice);
            count += 1;
        }
        Ok(count)
    }

    /// Write the table to a cache file (atomic enough for a cache: full
    /// rewrite through a temp name in the same directory).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tune.tmp");
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)
    }

    /// Merge a cache file into this table; a missing file is an empty
    /// cache (returns 0), a malformed one an error.
    pub fn load_into(&self, path: &Path) -> io::Result<usize> {
        match std::fs::read_to_string(path) {
            Ok(text) => self.merge_text(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Default for TuneTable {
    fn default() -> Self {
        Self::new()
    }
}

/// The tuning knob engines carry on their configs: a policy plus the
/// shared table (and the cache path under [`TunePolicy::Cache`]).
#[derive(Debug, Clone)]
pub struct Tuning {
    /// Whether (and how persistently) to tune.
    pub policy: TunePolicy,
    /// The shared decision table.
    pub table: Arc<TuneTable>,
    /// Cache file under [`TunePolicy::Cache`].
    pub cache_path: Option<PathBuf>,
    /// Probe seed (flows into the synthetic probe data).
    pub seed: u64,
}

impl Default for Tuning {
    fn default() -> Self {
        Self::off()
    }
}

impl Tuning {
    /// No tuning (the default): heuristic tiles everywhere.
    pub fn off() -> Self {
        Self {
            policy: TunePolicy::Off,
            table: Arc::new(TuneTable::new()),
            cache_path: None,
            seed: 0,
        }
    }

    /// Probe at startup, remember in-process.
    pub fn on() -> Self {
        Self { policy: TunePolicy::On, ..Self::off() }
    }

    /// Probe at startup, seeded from (and persisting to) `path`. A
    /// missing or unreadable cache file degrades to a cold table.
    pub fn cached(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let table = TuneTable::new();
        let _ = table.load_into(&path);
        Self { policy: TunePolicy::Cache, table: Arc::new(table), cache_path: Some(path), seed: 0 }
    }

    /// Replace the table (tests inject a deterministic prober this way).
    pub fn with_table(mut self, table: Arc<TuneTable>) -> Self {
        self.table = table;
        self
    }

    /// Set the probe seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Tuned `(row_tile, cent_tile)` for a shape, or `None` when tuning is
    /// off or the kernel takes no tiles (scalar). Fresh decisions are
    /// persisted under [`TunePolicy::Cache`] (best-effort: a read-only
    /// cache path loses persistence, not correctness).
    pub fn tiles_for(
        &self,
        kind: ResolvedKind,
        n: usize,
        k: usize,
        d: usize,
    ) -> Option<(usize, usize)> {
        if self.policy == TunePolicy::Off || kind == ResolvedKind::Scalar {
            return None;
        }
        let (choice, fresh) = self.table.choose(kind, n, k, d, self.seed);
        if fresh && self.policy == TunePolicy::Cache {
            if let Some(path) = &self.cache_path {
                let _ = self.table.save(path);
            }
        }
        Some((choice.row_tile, choice.cent_tile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic cost model: prefers 64×16 for every shape, with a
    /// gradient so the winner is unique.
    fn model_prober(case: &ProbeCase) -> f64 {
        (case.row_tile as f64 - 64.0).abs() + (case.cent_tile as f64 - 16.0).abs()
    }

    #[test]
    fn grid_starts_with_heuristic_and_respects_k() {
        let grid = candidate_grid(64, 32);
        assert_eq!(grid[0], {
            let rk = KernelKind::Tiled.resolve(64, 32, false);
            (rk.row_tile, rk.cent_tile)
        });
        assert!(grid.iter().all(|&(_, ct)| ct <= 64));
        let tiny = candidate_grid(3, 8);
        assert!(tiny.iter().all(|&(_, ct)| ct <= 3));
        // Dedup: the capped lattice must not repeat candidates.
        for (i, a) in tiny.iter().enumerate() {
            assert!(!tiny[i + 1..].contains(a), "duplicate candidate {a:?}");
        }
    }

    #[test]
    fn choose_is_deterministic_and_cached() {
        let t = TuneTable::with_prober(model_prober);
        let (c1, fresh1) = t.choose(ResolvedKind::Gemm, 100_000, 64, 32, 7);
        let (c2, fresh2) = t.choose(ResolvedKind::Gemm, 100_000, 64, 32, 7);
        assert!(fresh1 && !fresh2, "second call must hit the cache");
        assert_eq!(c1, c2);
        assert_eq!((c1.row_tile, c1.cent_tile), (64, 16), "model optimum");
        // Same n-bucket shares the decision; a different bucket reprobes.
        let (c3, fresh3) = t.choose(ResolvedKind::Gemm, 90_000, 64, 32, 7);
        assert!(!fresh3);
        assert_eq!(c1, c3);
        let (_, fresh4) = t.choose(ResolvedKind::Gemm, 1000, 64, 32, 7);
        assert!(fresh4);
    }

    #[test]
    fn wall_clock_prober_runs_every_kind() {
        for kind in
            [ResolvedKind::Tiled, ResolvedKind::Fma, ResolvedKind::NormTrick, ResolvedKind::Gemm]
        {
            let ns = wall_clock_prober(&ProbeCase {
                kind,
                n: 500,
                k: 8,
                d: 5,
                seed: 3,
                row_tile: 32,
                cent_tile: 8,
            });
            assert!(ns.is_finite() && ns > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn text_round_trip_and_rejects_corrupt() {
        let t = TuneTable::with_prober(model_prober);
        t.choose(ResolvedKind::Gemm, 100_000, 64, 32, 0);
        t.choose(ResolvedKind::Tiled, 4096, 16, 16, 0);
        let text = t.to_text();
        let fresh = TuneTable::with_prober(model_prober);
        assert_eq!(fresh.merge_text(&text).unwrap(), 2);
        assert_eq!(fresh.to_text(), text);
        assert_eq!(
            fresh.lookup(&TuneKey::new(ResolvedKind::Gemm, 100_000, 64, 32)),
            t.lookup(&TuneKey::new(ResolvedKind::Gemm, 100_000, 64, 32))
        );
        assert!(fresh.merge_text("not a cache\n").is_err());
        assert!(fresh.merge_text("knor-tune v1\ngemm 64\n").is_err());
        assert!(fresh.merge_text("knor-tune v1\nwarp 64 32 16 64 16\n").is_err());
    }

    #[test]
    fn cache_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("knor-tune-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shapes.tune");
        let t = TuneTable::with_prober(model_prober);
        t.choose(ResolvedKind::Gemm, 20_000, 32, 16, 0);
        t.save(&path).unwrap();
        let fresh = TuneTable::with_prober(model_prober);
        assert_eq!(fresh.load_into(&path).unwrap(), 1);
        let (choice, fresh_probe) = fresh.choose(ResolvedKind::Gemm, 20_000, 32, 16, 0);
        assert!(!fresh_probe, "cached entry must skip the probe");
        assert_eq!((choice.row_tile, choice.cent_tile), (64, 16));
        // A missing file is an empty cache, not an error.
        assert_eq!(fresh.load_into(&dir.join("absent.tune")).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tuning_policy_gates_and_persists() {
        let dir = std::env::temp_dir().join(format!("knor-tuning-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("auto.tune");

        assert_eq!(Tuning::off().tiles_for(ResolvedKind::Gemm, 1000, 16, 8), None);
        let on = Tuning::on().with_table(Arc::new(TuneTable::with_prober(model_prober)));
        assert_eq!(on.tiles_for(ResolvedKind::Scalar, 1000, 16, 8), None);
        assert_eq!(on.tiles_for(ResolvedKind::Gemm, 1000, 16, 8), Some((64, 16)));

        let cached = Tuning {
            policy: TunePolicy::Cache,
            table: Arc::new(TuneTable::with_prober(model_prober)),
            cache_path: Some(path.clone()),
            seed: 0,
        };
        assert_eq!(cached.tiles_for(ResolvedKind::Gemm, 1000, 16, 8), Some((64, 16)));
        // The fresh decision must have been persisted for the next process.
        let reread = Tuning::cached(&path);
        assert_eq!(reread.table.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The satellite determinism contract: thread count is not an input to
    /// the tuner. The key takes only (kind, k, d, n-bucket), the probe only
    /// the case plus the seed, and the sweep is a strict-`<` argmin over a
    /// fixed candidate order — so two tables fed the same per-candidate
    /// costs make the same pick, no matter how many worker threads the
    /// surrounding runs used. (Asserted with an injected cost model; the
    /// wall-clock prober feeds the same machinery.)
    #[test]
    fn same_seed_same_shape_same_pick() {
        let a = TuneTable::with_prober(model_prober);
        let b = TuneTable::with_prober(model_prober);
        for (n, k, d) in [(400, 2, 3), (100_000, 64, 32), (5_000, 7, 11)] {
            let (ca, _) = a.choose(ResolvedKind::Tiled, n, k, d, 42);
            let (cb, _) = b.choose(ResolvedKind::Tiled, n, k, d, 42);
            assert_eq!(ca, cb, "({n},{k},{d})");
            assert!(ca.cent_tile <= k);
        }
    }
}
