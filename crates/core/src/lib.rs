//! `knor-core` — the ||Lloyd's engine with MTI pruning (the paper's knori).
//!
//! # The algorithm
//!
//! Classic Lloyd's alternates two globally-barriered phases: (I) assign each
//! point to its nearest centroid, (II) recompute centroids as the mean of
//! their members. Phase II parallelism is limited by contention on the
//! shared next-iteration centroids. knor's ||Lloyd's (Algorithm 1) gives
//! every thread a private copy of the next-iteration centroids, merges
//! phases I and II into one *super-phase*, and reduces the per-thread
//! copies in parallel at the end of the iteration — one global barrier
//! instead of two, and no locks on the hot path.
//!
//! # MTI pruning
//!
//! Elkan's triangle-inequality algorithm prunes distance computations but
//! keeps an `O(nk)` lower-bound matrix. knor's *minimal triangle
//! inequality* (MTI) keeps only an `O(n)` vector of upper bounds plus an
//! `O(k^2)` centroid–centroid distance matrix and applies three of Elkan's
//! four clauses:
//!
//! * **Clause 1** — if `u(x) <= ½·min_{c≠a} d(a, c)`, the point keeps its
//!   assignment and *no data access at all* is needed (in SEM mode this
//!   also skips the I/O request);
//! * **Clause 2** — a candidate `c` is skipped when `u(x) <= ½·d(a, c)`;
//! * **Clause 3** — after tightening `u(x)` to the exact distance
//!   (`U(u_t)` in the paper), the same test prunes again.
//!
//! (The paper's prose omits Elkan's ½ factor; we implement the correct
//! bound — see DESIGN.md §3.)
//!
//! # Quick start
//!
//! ```
//! use knor_core::{Kmeans, KmeansConfig};
//! use knor_matrix::DMatrix;
//!
//! let data = DMatrix::from_vec(
//!     vec![0.0, 0.1, 0.2, 10.0, 10.1, 9.9, -5.0, -5.1, -4.9],
//!     9,
//!     1,
//! );
//! let result = Kmeans::new(KmeansConfig::new(3).with_seed(1)).fit(&data);
//! assert!(result.converged);
//! assert_eq!(result.centroids.nrow(), 3);
//! ```

pub mod algo;
pub mod centroids;
pub mod distance;
pub mod driver;
pub mod engine;
pub mod init;
pub mod kernel;
pub mod plane;
pub mod pruning;
pub mod quality;
pub mod replica;
pub mod serial;
pub mod stats;
pub mod sync;
pub mod trace;
pub mod tune;

pub use algo::{Algorithm, MapOut, MmAlgorithm, Normalization, UpdateCtx};
pub use centroids::{Centroids, LocalAccum};
pub use driver::{DriverConfig, DriverOutcome, IterView, LloydBackend, ReduceReport, WorkerReport};
pub use engine::{Kmeans, KmeansConfig};
pub use init::InitMethod;
pub use kernel::{fma_usable, KernelKind, KernelScratch, ResolvedKernel, ResolvedKind};
pub use plane::{DataPlane, PlaneBackend, SlicePlane, StagedScratch, StagedSource};
pub use pruning::Pruning;
pub use replica::{NodeReplicas, OpLog, ReplicaState, Replication};
pub use stats::{IterStats, KmeansResult, MemoryFootprint, NumaReport};
pub use trace::{Phase, PhaseBreakdown, PhaseGroup, Span, TraceBuf, TraceHandle, WorkerTracer};
pub use tune::{TileChoice, TuneKey, TunePolicy, TuneTable, Tuning};
