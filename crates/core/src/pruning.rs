//! Distance-pruning state: MTI (the paper's scheme) and Yinyang group
//! bounds.
//!
//! MTI keeps per point only an upper bound `u(x) >= d(x, assigned(x))`
//! (`O(n)` memory) and per iteration an `O(k²)` centroid–centroid distance
//! matrix with per-centroid `s(c) = ½·min_{c'≠c} d(c, c')`. After each
//! centroid update the bounds are *loosened* by the assigned centroid's
//! drift `f(c) = d(c^t, c^{t-1})` — the triangle inequality guarantees the
//! loosened bound still dominates the true distance. The three clauses are
//! applied by the engines (in-memory and SEM) through [`MtiIterState`].
//!
//! Yinyang (Ding et al., ICML'15) trades `O(n·t)` memory for stronger
//! bounds: centroids are clustered once into `t = max(1, k/10)` groups
//! ([`YinyangState::group`]), every point keeps a per-*group* lower bound
//! next to the global upper bound, and each iteration loosens the group
//! bounds by the group's maximum drift. The global filter skips the whole
//! row (and, on the SEM plane, the row's I/O); the group filter skips
//! whole groups of candidates. Both schemes are exact — trajectories match
//! the unpruned path bit for bit.

use crate::centroids::Centroids;
use crate::distance::{centroid_distances, dist};

/// Which pruning scheme an engine applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pruning {
    /// No pruning: every point computes all `k` distances each iteration
    /// (the `-` suffix modules: knori-, knors-, knord-).
    None,
    /// Minimal triangle inequality (the paper's contribution).
    #[default]
    Mti,
    /// Yinyang group bounds: `t = max(1, k/10)` per-row lower bounds plus
    /// the global upper bound (`O(n·t)` memory, `O(k + t)` shared state).
    Yinyang,
}

impl Pruning {
    /// True when any pruning scheme is enabled.
    pub fn enabled(&self) -> bool {
        !matches!(self, Pruning::None)
    }

    /// Parse a CLI spelling (`none | mti | yinyang`).
    pub fn parse(s: &str) -> Option<Pruning> {
        match s {
            "none" => Some(Pruning::None),
            "mti" => Some(Pruning::Mti),
            "yinyang" => Some(Pruning::Yinyang),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Pruning::None => "none",
            Pruning::Mti => "mti",
            Pruning::Yinyang => "yinyang",
        }
    }
}

/// Number of Yinyang centroid groups for `k` clusters (`max(1, k/10)`,
/// the ratio from the Yinyang paper).
pub fn yinyang_groups(k: usize) -> usize {
    (k / 10).max(1)
}

/// Shared Yinyang state: the one-time centroid grouping plus the
/// per-iteration drift vectors, rebuilt by the coordinator after every
/// centroid update and read-only during the compute super-phase.
#[derive(Debug, Clone)]
pub struct YinyangState {
    /// Group id of each centroid (`len k`).
    pub group_of: Vec<u32>,
    /// CSR offsets into [`Self::group_members`] (`len t + 1`).
    group_start: Vec<u32>,
    /// Centroid ids sorted by group, ascending within each group.
    group_members: Vec<u32>,
    /// Drift `f(c) = d(c^t, c^{t-1})` per centroid (`len k`).
    pub drift: Vec<f64>,
    /// Max drift over each group's members (`len t`) — the per-group
    /// loosening amount, and the only Yinyang quantity knord puts on the
    /// wire beyond the shared accumulator payload.
    pub group_drift: Vec<f64>,
}

impl YinyangState {
    /// Zero-size placeholder for runs where Yinyang is off.
    pub fn empty() -> Self {
        Self {
            group_of: Vec::new(),
            group_start: vec![0],
            group_members: Vec::new(),
            drift: Vec::new(),
            group_drift: Vec::new(),
        }
    }

    /// Cluster the initial centroids into `t = max(1, k/10)` groups (five
    /// serial Lloyd iterations on the centers themselves, as the Yinyang
    /// paper prescribes). Deterministic in `init`, so every knord rank
    /// derives the identical grouping with zero wire traffic.
    pub fn group(init: &Centroids) -> Self {
        let k = init.k();
        let t = yinyang_groups(k);
        let group_of: Vec<u32> = if t == 1 {
            vec![0; k]
        } else {
            let r = crate::serial::lloyd_serial(
                &init.to_matrix(),
                t,
                &crate::init::InitMethod::Forgy,
                1,
                5,
                0.0,
            );
            r.assignments
        };
        let mut group_start = vec![0u32; t + 1];
        for &g in &group_of {
            group_start[g as usize + 1] += 1;
        }
        for g in 0..t {
            group_start[g + 1] += group_start[g];
        }
        let mut cursor = group_start.clone();
        let mut group_members = vec![0u32; k];
        for (c, &g) in group_of.iter().enumerate() {
            group_members[cursor[g as usize] as usize] = c as u32;
            cursor[g as usize] += 1;
        }
        Self {
            group_of,
            group_start,
            group_members,
            drift: vec![0.0; k],
            group_drift: vec![0.0; t],
        }
    }

    /// Number of groups `t` (0 for [`Self::empty`]).
    pub fn t(&self) -> usize {
        self.group_drift.len()
    }

    /// Centroid ids of group `g`, ascending.
    #[inline]
    pub fn members(&self, g: usize) -> &[u32] {
        &self.group_members[self.group_start[g] as usize..self.group_start[g + 1] as usize]
    }

    /// Fold the per-centroid drifts into per-group maxima. The coordinator
    /// calls this after the drift pass; knord then max-allreduces the
    /// result (bitwise a no-op — every rank computed identical values).
    pub fn update_group_drift(&mut self) {
        self.group_drift.fill(0.0);
        for (c, &g) in self.group_of.iter().enumerate() {
            let g = g as usize;
            if self.drift[c] > self.group_drift[g] {
                self.group_drift[g] = self.drift[c];
            }
        }
    }

    /// Heap bytes of the shared state (`O(k + t)` — the per-row bounds are
    /// accounted separately as `n·(t+1)·8`).
    pub fn heap_bytes(&self) -> u64 {
        ((self.group_of.len() + self.group_start.len() + self.group_members.len()) * 4
            + (self.drift.len() + self.group_drift.len()) * 8) as u64
    }
}

/// Per-iteration global MTI state, rebuilt by the coordinator after every
/// centroid update and read-only during the compute super-phase.
#[derive(Debug, Clone)]
pub struct MtiIterState {
    /// Full `k x k` centroid–centroid distances (symmetric).
    pub ccdist: Vec<f64>,
    /// `s(c) = ½·min_{c'≠c} d(c, c')` per centroid (Clause 1 threshold).
    pub half_min: Vec<f64>,
    /// Drift `f(c) = d(c^t, c^{t-1})` per centroid.
    pub drift: Vec<f64>,
    k: usize,
}

impl MtiIterState {
    /// Zeroed state for `k` centroids.
    pub fn new(k: usize) -> Self {
        Self { ccdist: vec![0.0; k * k], half_min: vec![0.0; k], drift: vec![0.0; k], k }
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Recompute the distance matrix and thresholds for `next`, and the
    /// drifts from `prev` to `next`. (The driver writes drifts inline from
    /// its fused drift/convergence loop and calls [`Self::rebuild`] — or
    /// fills the triangle in parallel and calls [`Self::finalize_half_min`]
    /// — instead; this convenience wrapper serves tests and baselines.)
    pub fn update(&mut self, prev: &Centroids, next: &Centroids) {
        debug_assert_eq!(prev.k(), self.k);
        for c in 0..self.k {
            self.drift[c] = dist(prev.mean(c), next.mean(c));
        }
        self.rebuild(next);
    }

    /// Recompute the centroid–centroid distance matrix and thresholds for
    /// `cents`, serially.
    pub fn rebuild(&mut self, cents: &Centroids) {
        centroid_distances(&cents.means, self.k, cents.d, &mut self.ccdist, &mut self.half_min);
    }

    /// Derive `half_min` from an already-filled `ccdist` upper triangle.
    /// The driver calls this after its workers filled disjoint row slices
    /// of the triangle in parallel (large-`k` runs).
    pub fn finalize_half_min(&mut self) {
        let k = self.k;
        for x in self.half_min.iter_mut() {
            *x = f64::INFINITY;
        }
        for i in 0..k {
            for j in (i + 1)..k {
                let dij = self.ccdist[i * k + j];
                if dij < self.half_min[i] {
                    self.half_min[i] = dij;
                }
                if dij < self.half_min[j] {
                    self.half_min[j] = dij;
                }
            }
        }
        for x in self.half_min.iter_mut() {
            *x *= 0.5;
            if !x.is_finite() {
                *x = 0.0;
            }
        }
    }

    /// `½·d(a, c)` — the Clause 2/3 threshold for candidate `c` against
    /// current assignment `a`. Looks up `ccdist[min*k + max]` so it works
    /// whether or not the matrix was mirrored (it is not for
    /// `k > `[`crate::distance::MIRROR_MAX_K`]).
    #[inline]
    pub fn half_cc(&self, a: usize, c: usize) -> f64 {
        let (lo, hi) = if a < c { (a, c) } else { (c, a) };
        0.5 * self.ccdist[lo * self.k + hi]
    }

    /// Heap bytes held (`O(k²)` of Table 1's knori/knord rows).
    pub fn heap_bytes(&self) -> u64 {
        ((self.ccdist.len() + self.half_min.len() + self.drift.len()) * 8) as u64
    }
}

/// Outcome counters for pruning effectiveness (reported per iteration).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneCounters {
    /// Rows skipped entirely by Clause 1 (no data access / no I/O).
    pub clause1_rows: u64,
    /// Candidate distance computations pruned by Clause 2.
    pub clause2_prunes: u64,
    /// Candidate distance computations pruned by Clause 3 (post-tighten).
    pub clause3_prunes: u64,
    /// Exact distance computations performed.
    pub dist_computations: u64,
    /// Rows whose *fetch* a staged (SEM) plane skipped because the row was
    /// bound-pruned before its data was needed. A subset of
    /// [`Self::clause1_rows`] — distance-pruning and I/O-avoidance are
    /// reported separately.
    pub io_skip_rows: u64,
}

impl PruneCounters {
    /// Merge counters from another worker.
    pub fn merge(&mut self, o: &PruneCounters) {
        self.clause1_rows += o.clause1_rows;
        self.clause2_prunes += o.clause2_prunes;
        self.clause3_prunes += o.clause3_prunes;
        self.dist_computations += o.dist_computations;
        self.io_skip_rows += o.io_skip_rows;
    }

    /// Total pruned candidate computations (clauses 2+3).
    pub fn pruned_candidates(&self) -> u64 {
        self.clause2_prunes + self.clause3_prunes
    }
}

/// Evaluate one point under MTI against the current centroids.
///
/// `a` is the current assignment, `ub` the (already drift-loosened) upper
/// bound. Returns the new `(assignment, upper_bound)`; `counters` records
/// pruning outcomes. The caller has already decided Clause 1 did not fire
/// (Clause 1 is checked *before* the row data is fetched — that is where
/// knors saves its I/O).
#[inline]
pub fn mti_assign(
    v: &[f64],
    cents: &Centroids,
    state: &MtiIterState,
    a: usize,
    ub: f64,
    counters: &mut PruneCounters,
) -> (usize, f64) {
    let k = cents.k();
    let mut cur = a;
    let mut bound = ub;
    let mut tight = false;
    for c in 0..k {
        if c == cur {
            continue;
        }
        let threshold = state.half_cc(cur, c);
        if bound <= threshold {
            counters.clause2_prunes += 1;
            continue;
        }
        if !tight {
            // U(u_t): fully tighten the upper bound with one exact distance.
            bound = dist(v, cents.mean(cur));
            counters.dist_computations += 1;
            tight = true;
            if bound <= threshold {
                counters.clause3_prunes += 1;
                continue;
            }
        }
        let dc = dist(v, cents.mean(c));
        counters.dist_computations += 1;
        if dc < bound {
            cur = c;
            bound = dc; // exact: reassignment keeps the bound tight
        }
    }
    (cur, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::nearest;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_centroids(k: usize, d: usize, rng: &mut impl Rng) -> Centroids {
        let mut c = Centroids::zeros(k, d);
        for x in c.means.iter_mut() {
            *x = rng.gen_range(-5.0..5.0);
        }
        c
    }

    #[test]
    fn mti_matches_exact_nearest() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let k = 8;
        let d = 6;
        let prev = random_centroids(k, d, &mut rng);
        let mut cents = prev.clone();
        // Perturb slightly to create non-zero drift.
        for x in cents.means.iter_mut() {
            *x += rng.gen_range(-0.1..0.1);
        }
        let mut state = MtiIterState::new(k);
        state.update(&prev, &cents);

        for _ in 0..500 {
            let v: Vec<f64> = (0..d).map(|_| rng.gen_range(-6.0..6.0)).collect();
            // Simulate a prior assignment against prev with valid bound.
            let (a_prev, d_prev) = nearest(&v, &prev.means, k);
            let ub = d_prev + state.drift[a_prev]; // loosened bound
            let mut counters = PruneCounters::default();
            let (a_new, ub_new) = mti_assign(&v, &cents, &state, a_prev, ub, &mut counters);
            let (a_exact, d_exact) = nearest(&v, &cents.means, k);
            let d_new = dist(&v, cents.mean(a_new));
            assert!(
                (d_new - d_exact).abs() < 1e-10,
                "MTI picked a non-nearest centroid: {d_new} vs {d_exact}"
            );
            assert_eq!(a_new, a_exact);
            // Upper bound invariant.
            assert!(ub_new + 1e-10 >= d_new, "bound {ub_new} below true {d_new}");
        }
    }

    #[test]
    fn clause1_threshold_is_safe() {
        // If ub <= half_min[a], a must be the exact nearest.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let k = 6;
        let d = 4;
        let cents = random_centroids(k, d, &mut rng);
        let mut state = MtiIterState::new(k);
        state.update(&cents.clone(), &cents);
        let mut checked = 0;
        for _ in 0..2000 {
            let v: Vec<f64> = (0..d).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let (a, da) = nearest(&v, &cents.means, k);
            if da <= state.half_min[a] {
                checked += 1;
                // Verify no other centroid is nearer.
                for c in 0..k {
                    assert!(dist(&v, cents.mean(c)) + 1e-12 >= da);
                }
            }
        }
        assert!(checked > 0, "test never exercised clause 1");
    }

    #[test]
    fn counters_account_for_all_candidates() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let k = 10;
        let d = 4;
        let cents = random_centroids(k, d, &mut rng);
        let mut state = MtiIterState::new(k);
        state.update(&cents.clone(), &cents);
        let v: Vec<f64> = (0..d).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let (a, da) = nearest(&v, &cents.means, k);
        let mut counters = PruneCounters::default();
        let _ = mti_assign(&v, &cents, &state, a, da, &mut counters);
        // Each of the k-1 candidates is pruned (2 or 3) or computed; plus at
        // most one tighten computation.
        let candidates = counters.clause2_prunes
            + counters.clause3_prunes
            + counters.dist_computations.saturating_sub(u64::from(
                counters.dist_computations > 0 && counters.clause3_prunes > 0,
            ));
        assert!(candidates >= (k - 1) as u64 - 1, "counters {counters:?}");
    }

    #[test]
    fn mti_exact_beyond_mirror_cutoff() {
        // k > MIRROR_MAX_K stores only the upper triangle; the ordered
        // half_cc lookup must keep every clause exact.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let k = crate::distance::MIRROR_MAX_K + 8;
        let d = 4;
        let prev = random_centroids(k, d, &mut rng);
        let mut cents = prev.clone();
        for x in cents.means.iter_mut() {
            *x += rng.gen_range(-0.05..0.05);
        }
        let mut state = MtiIterState::new(k);
        state.update(&prev, &cents);
        for _ in 0..200 {
            let v: Vec<f64> = (0..d).map(|_| rng.gen_range(-6.0..6.0)).collect();
            let (a_prev, d_prev) = nearest(&v, &prev.means, k);
            let ub = d_prev + state.drift[a_prev];
            let mut counters = PruneCounters::default();
            let (a_new, _) = mti_assign(&v, &cents, &state, a_prev, ub, &mut counters);
            let (a_exact, _) = nearest(&v, &cents.means, k);
            assert_eq!(a_new, a_exact);
        }
    }

    #[test]
    fn finalize_half_min_matches_serial_rebuild() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for k in [1usize, 2, 9, crate::distance::MIRROR_MAX_K + 3] {
            let cents = random_centroids(k, 5, &mut rng);
            let mut serial = MtiIterState::new(k);
            serial.rebuild(&cents);
            // Simulate the parallel path: fill only the upper triangle,
            // then finalize.
            let mut par = MtiIterState::new(k);
            for i in 0..k {
                for j in (i + 1)..k {
                    par.ccdist[i * k + j] = dist(cents.mean(i), cents.mean(j));
                }
            }
            par.finalize_half_min();
            assert_eq!(par.half_min, serial.half_min, "k = {k}");
        }
    }

    #[test]
    fn pruning_parse_name_roundtrip() {
        for p in [Pruning::None, Pruning::Mti, Pruning::Yinyang] {
            assert_eq!(Pruning::parse(p.name()), Some(p));
        }
        assert_eq!(Pruning::parse("banana"), None);
        assert!(!Pruning::None.enabled());
        assert!(Pruning::Mti.enabled());
        assert!(Pruning::Yinyang.enabled());
    }

    #[test]
    fn yinyang_grouping_is_a_partition() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for k in [1usize, 7, 10, 25, 64] {
            let cents = random_centroids(k, 4, &mut rng);
            let yy = YinyangState::group(&cents);
            assert_eq!(yy.t(), (k / 10).max(1));
            assert_eq!(yy.group_of.len(), k);
            // CSR members cover every centroid exactly once, ascending
            // within each group, and agree with group_of.
            let mut seen = vec![false; k];
            for g in 0..yy.t() {
                let m = yy.members(g);
                assert!(m.windows(2).all(|w| w[0] < w[1]), "k={k} g={g}");
                for &c in m {
                    assert_eq!(yy.group_of[c as usize] as usize, g);
                    assert!(!seen[c as usize]);
                    seen[c as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "k={k}: member lists must cover all centroids");
        }
    }

    #[test]
    fn group_drift_is_member_max() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cents = random_centroids(23, 3, &mut rng);
        let mut yy = YinyangState::group(&cents);
        for (c, d) in yy.drift.iter_mut().enumerate() {
            *d = c as f64 * 0.5;
        }
        yy.update_group_drift();
        for g in 0..yy.t() {
            let want = yy.members(g).iter().map(|&c| yy.drift[c as usize]).fold(0.0, f64::max);
            assert_eq!(yy.group_drift[g], want);
        }
    }

    #[test]
    fn update_computes_drift() {
        let prev = Centroids { means: vec![0.0, 0.0, 3.0, 0.0], counts: vec![1, 1], d: 2 };
        let next = Centroids { means: vec![0.0, 4.0, 3.0, 0.0], counts: vec![1, 1], d: 2 };
        let mut s = MtiIterState::new(2);
        s.update(&prev, &next);
        assert!((s.drift[0] - 4.0).abs() < 1e-12);
        assert_eq!(s.drift[1], 0.0);
        // ccdist between (0,4) and (3,0) is 5.
        assert!((s.half_cc(0, 1) - 2.5).abs() < 1e-12);
        assert_eq!(s.half_min, vec![2.5, 2.5]);
    }
}
