//! Per-iteration statistics, memory accounting and the result type.

use crate::pruning::PruneCounters;
use crate::replica::Replication;
use crate::trace::PhaseBreakdown;
use knor_matrix::DMatrix;
use knor_numa::AccessTally;
use knor_sched::QueueStats;

/// Statistics for one ||Lloyd's iteration.
#[derive(Debug, Clone)]
pub struct IterStats {
    /// Iteration number, 0-based (iteration 0 is the initial assignment).
    pub iter: usize,
    /// Points whose assignment changed this iteration.
    pub reassigned: u64,
    /// Rows whose data was actually touched (n minus Clause 1 skips).
    pub rows_accessed: u64,
    /// Pruning outcome counters.
    pub prune: PruneCounters,
    /// Measured wall time of the iteration on the host.
    pub wall_ns: u64,
    /// Task-queue dispatch statistics for the iteration.
    pub queue: QueueStats,
    /// Exact per-worker access/compute tallies (input to the NUMA cost
    /// model); present when the engine was configured to track them.
    pub tallies: Option<Vec<AccessTally>>,
    /// Maximum centroid drift after the update.
    pub max_drift: f64,
    /// Bytes copied into NUMA-node replicas for this iteration's op-log
    /// publish, summed over all populated nodes (0 with replication off,
    /// and on the final iteration, which publishes nothing).
    pub publish_bytes: u64,
}

/// NUMA topology and replication report for one run (the `--stats` NUMA
/// section).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NumaReport {
    /// NUMA nodes in the resolved topology.
    pub nodes: usize,
    /// Worker threads bound to each node, in node order.
    pub workers_per_node: Vec<usize>,
    /// The replication knob as requested on the engine config.
    pub requested: Replication,
    /// Whether per-node read replicas were actually maintained (the
    /// resolution of `requested` against the topology).
    pub replicated: bool,
}

/// Heap-memory footprint of a run, following Table 1's decomposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// The dataset itself: `O(nd)` for in-memory modules, `0` for SEM
    /// (rows stream from disk), or the row-cache budget for knors.
    pub data_bytes: u64,
    /// Global centroid structures: `O(kd)` (current + next).
    pub centroid_bytes: u64,
    /// Per-thread accumulators: `O(Tkd)`.
    pub accum_bytes: u64,
    /// Per-row engine state: assignments `O(n)` (4 bytes/row), plus — when
    /// pruning is on — upper bounds (8 bytes/row), plus — under Yinyang —
    /// `t` group lower bounds per row (`8t` bytes/row).
    pub per_row_bytes: u64,
    /// Scheme-global pruning structures: MTI's `O(k²)` centroid-distance
    /// matrix, or Yinyang's `O(k + t)` grouping/drift tables.
    pub pruning_bytes: u64,
    /// Caches (row cache + page cache) for SEM runs.
    pub cache_bytes: u64,
}

impl MemoryFootprint {
    /// Total accounted bytes.
    pub fn total(&self) -> u64 {
        self.data_bytes
            + self.centroid_bytes
            + self.accum_bytes
            + self.per_row_bytes
            + self.pruning_bytes
            + self.cache_bytes
    }
}

/// The outcome of a k-means run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Final `k x d` centroids.
    pub centroids: DMatrix,
    /// Final assignment of each row.
    pub assignments: Vec<u32>,
    /// Number of iterations executed (including the initial assignment).
    pub niters: usize,
    /// True if assignments stabilized (or drift fell below tolerance)
    /// before the iteration cap.
    pub converged: bool,
    /// Per-iteration statistics.
    pub iters: Vec<IterStats>,
    /// Accounted memory footprint.
    pub memory: MemoryFootprint,
    /// Final within-cluster sum of squared distances, when requested.
    pub sse: Option<f64>,
    /// NUMA topology and replication report.
    pub numa: NumaReport,
    /// Per-phase trace fold for the run (`Some` iff a recorder was
    /// attached — see [`crate::trace`]).
    pub phases: Option<PhaseBreakdown>,
}

impl KmeansResult {
    /// Mean measured wall time per *steady-state* iteration, in
    /// nanoseconds.
    ///
    /// Iteration 0 is the initial full-assignment pass: it has no prior
    /// assignments, so MTI cannot prune and every row takes a full
    /// `k`-way scan — structurally different work from every later
    /// iteration. When the run has more than one iteration it is
    /// excluded from the mean; a single-iteration run returns that
    /// iteration's wall time (there is nothing steadier to report).
    pub fn mean_iter_ns(&self) -> f64 {
        match self.iters.len() {
            0 => 0.0,
            1 => self.iters[0].wall_ns as f64,
            len => self.iters[1..].iter().map(|i| i.wall_ns as f64).sum::<f64>() / (len - 1) as f64,
        }
    }

    /// Sum of pruning counters across iterations.
    pub fn total_prune(&self) -> PruneCounters {
        let mut total = PruneCounters::default();
        for it in &self.iters {
            total.merge(&it.prune);
        }
        total
    }

    /// Fraction of candidate distance computations avoided across the
    /// *prunable* iterations, relative to the unpruned `n·k` per
    /// iteration.
    ///
    /// Iteration 0 establishes the initial assignments — there are no
    /// prior assignments to prune against, so MTI always does the full
    /// `n·k` there. Counting it would dilute the reported fraction by
    /// `1/niters` regardless of how well the clauses work, so the
    /// denominator covers iterations `1..` only. A run with no prunable
    /// iterations (0 or 1 total) reports `0.0`.
    pub fn prune_fraction(&self, n: u64, k: u64) -> f64 {
        if self.iters.len() < 2 {
            return 0.0;
        }
        let total_possible = n * k * (self.iters.len() as u64 - 1);
        if total_possible == 0 {
            return 0.0;
        }
        let done: u64 = self.iters[1..].iter().map(|i| i.prune.dist_computations).sum();
        1.0 - done as f64 / total_possible as f64
    }

    /// Total replica publish bytes across the run (0 with replication off).
    pub fn total_publish_bytes(&self) -> u64 {
        self.iters.iter().map(|i| i.publish_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_total_sums_fields() {
        let f = MemoryFootprint {
            data_bytes: 100,
            centroid_bytes: 10,
            accum_bytes: 20,
            per_row_bytes: 30,
            pruning_bytes: 5,
            cache_bytes: 7,
        };
        assert_eq!(f.total(), 172);
    }

    #[test]
    fn result_helpers() {
        let mk_iter = |wall: u64, comps: u64| IterStats {
            iter: 0,
            reassigned: 0,
            rows_accessed: 0,
            prune: PruneCounters { dist_computations: comps, ..Default::default() },
            wall_ns: wall,
            queue: QueueStats::default(),
            tallies: None,
            max_drift: 0.0,
            publish_bytes: 12,
        };
        let r = KmeansResult {
            centroids: DMatrix::zeros(1, 1),
            assignments: vec![],
            niters: 2,
            converged: true,
            iters: vec![mk_iter(100, 50), mk_iter(300, 50)],
            memory: MemoryFootprint::default(),
            sse: None,
            numa: NumaReport::default(),
            phases: None,
        };
        // Iteration 0 (the initial assignment pass) is excluded from the
        // steady-state mean: only the 300 ns iteration counts.
        assert_eq!(r.mean_iter_ns(), 300.0);
        assert_eq!(r.total_publish_bytes(), 24);
        assert_eq!(r.total_prune().dist_computations, 100);
        // n=10, k=10: one prunable iteration -> 100 possible, 50 done.
        assert!((r.prune_fraction(10, 10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iteration_zero_edge_cases() {
        let mk_iter = |wall: u64, comps: u64| IterStats {
            iter: 0,
            reassigned: 0,
            rows_accessed: 0,
            prune: PruneCounters { dist_computations: comps, ..Default::default() },
            wall_ns: wall,
            queue: QueueStats::default(),
            tallies: None,
            max_drift: 0.0,
            publish_bytes: 0,
        };
        let mk = |iters: Vec<IterStats>| KmeansResult {
            centroids: DMatrix::zeros(1, 1),
            assignments: vec![],
            niters: iters.len(),
            converged: true,
            iters,
            memory: MemoryFootprint::default(),
            sse: None,
            numa: NumaReport::default(),
            phases: None,
        };
        // No iterations at all.
        let empty = mk(vec![]);
        assert_eq!(empty.mean_iter_ns(), 0.0);
        assert_eq!(empty.prune_fraction(10, 10), 0.0);
        // A single iteration: only the unprunable initial pass ran, so the
        // mean falls back to it and the prune fraction is undefined -> 0.
        let one = mk(vec![mk_iter(700, 100)]);
        assert_eq!(one.mean_iter_ns(), 700.0);
        assert_eq!(one.prune_fraction(10, 10), 0.0);
    }
}
