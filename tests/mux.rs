//! Multiplexed front-end integration tests: wire-level parity with the
//! blocking server, slow-client isolation, BUSY admission control, and
//! hot model swap with in-flight queries (ISSUE 9 acceptance).

use knor::mpi::LineConn;
use knor::prelude::*;
use knor::serve::tcp::{Client, TcpServer};
use knor::serve::{predict_serial, MuxConfig, MuxServer};
use knor_core::Algorithm;

fn handle() -> ServeHandle {
    ServeHandle::start(ServeConfig::default().with_threads(2))
}

/// Deterministic centroids/queries that exercise kernel remainders
/// (d not a multiple of the lane width) without proptest machinery.
fn centroids(k: usize, d: usize, salt: u64) -> DMatrix {
    let vals: Vec<f64> =
        (0..k * d).map(|i| ((i as u64 * 2654435761 + salt) % 97) as f64 - 48.0).collect();
    DMatrix::from_vec(vals, k, d)
}

fn queries(m: usize, d: usize, salt: u64) -> Vec<f64> {
    (0..m * d).map(|i| ((i as u64 * 40503 + salt) % 101) as f64 * 0.5 - 25.0).collect()
}

fn query_line(model: &str, q: &[f64], d: usize) -> String {
    let mut line = format!("QUERY {model} {} {d}", q.len() / d);
    for x in q {
        line.push(' ');
        line.push_str(&format!("{x:?}"));
    }
    line
}

/// The acceptance bar: for every algorithm (whose normalization changes
/// the kernel) across shapes that resolve to different kernels, the mux
/// reply line is **byte-identical** to the blocking server's for the
/// same request — and both match the serial reference bit for bit.
#[test]
fn mux_replies_byte_identical_to_blocking_front_end() {
    let h = handle();
    let algos = [
        Algorithm::Lloyd,
        Algorithm::Spherical,
        Algorithm::Fuzzy { m: 2.0 },
        Algorithm::MiniBatch { batch: 8 },
    ];
    // (k, d) pairs that resolve Auto to different kernels (tiny scalar
    // shapes up through GEMM-eligible ones).
    let shapes = [(2usize, 3usize), (8, 4), (16, 9), (24, 16)];
    let mut names = Vec::new();
    for algo in &algos {
        for &(k, d) in &shapes {
            let name = format!("{}-{k}x{d}", algo.name());
            h.register_model(&name, algo.clone(), centroids(k, d, k as u64 * 31 + d as u64));
            names.push((name, k, d));
        }
    }

    let blocking = TcpServer::bind(h.clone(), "127.0.0.1:0").expect("bind blocking");
    let mux =
        MuxServer::bind(h.clone(), "127.0.0.1:0", MuxConfig::default().with_max_delay_us(500))
            .expect("bind mux");
    let mut cb = LineConn::connect(blocking.addr()).unwrap();
    let mut cm = LineConn::connect(mux.addr()).unwrap();

    for (name, _k, d) in &names {
        for m in [1usize, 7, 33] {
            let q = queries(m, *d, *d as u64 + m as u64);
            let line = query_line(name, &q, *d);
            cb.send_line(&line).unwrap();
            cm.send_line(&line).unwrap();
            let rb = cb.recv_line().unwrap().expect("blocking reply");
            let rm = cm.recv_line().unwrap().expect("mux reply");
            assert_eq!(rb, rm, "front ends disagree for {name} m={m}");
            let entry = h.registry().get(name).unwrap();
            let reference = predict_serial(&entry.model, &q, *d);
            let mut expect = format!("OK {m}");
            for (a, dist) in reference.assignments.iter().zip(&reference.distances) {
                expect.push_str(&format!(" {a}:{dist:?}"));
            }
            assert_eq!(rm, expect, "serial reference mismatch for {name} m={m}");
        }
    }

    // Error replies agree byte-for-byte too.
    for line in
        ["QUERY ghost 1 2 0.0 0.0", "QUERY lloyd-2x3 1 9 0 0 0 0 0 0 0 0 0", "NONSENSE verb"]
    {
        cb.send_line(line).unwrap();
        cm.send_line(line).unwrap();
        let rb = cb.recv_line().unwrap().unwrap();
        let rm = cm.recv_line().unwrap().unwrap();
        assert!(rb.starts_with("ERR "), "{rb}");
        assert_eq!(rb, rm, "error replies disagree for {line:?}");
    }

    // Zero-row queries answer inline on both.
    let line = "QUERY lloyd-2x3 0 3";
    cb.send_line(line).unwrap();
    cm.send_line(line).unwrap();
    assert_eq!(cb.recv_line().unwrap().unwrap(), "OK 0");
    assert_eq!(cm.recv_line().unwrap().unwrap(), "OK 0");

    let mut ctl = Client::connect(mux.addr()).unwrap();
    ctl.shutdown().unwrap();
    mux.join();
    blocking.stop();
}

/// A client that stops reading its replies must not stall anyone else:
/// the loop drops its read interest once the write buffer passes the cap,
/// while a second connection keeps round-tripping. Once the slow client
/// starts reading again it receives every reply, in order.
#[test]
fn slow_client_does_not_stall_other_connections() {
    let h = handle();
    h.register_model("m", Algorithm::Lloyd, centroids(4, 2, 7));
    let cfg = MuxConfig::default().with_max_delay_us(500).with_write_buf_cap(256);
    let mux = MuxServer::bind(h.clone(), "127.0.0.1:0", cfg).expect("bind mux");

    // The slow client floods queries and reads nothing yet. Distinct
    // payloads so reply order is checkable.
    let mut slow = LineConn::connect(mux.addr()).unwrap();
    let rounds = 200usize;
    for i in 0..rounds {
        let q = [i as f64 * 0.25, -(i as f64)];
        slow.send_line(&query_line("m", &q, 2)).unwrap();
    }

    // Meanwhile a well-behaved client round-trips without delay.
    let mut fast = Client::connect(mux.addr()).unwrap();
    for i in 0..20 {
        let q = [i as f64, i as f64];
        let out = fast.query_block("m", &q, 2).expect("fast client stalled");
        assert_eq!(out.len(), 1);
    }

    // Now the slow client drains: every reply arrives, in request order.
    let entry = h.registry().get("m").unwrap();
    for i in 0..rounds {
        let q = [i as f64 * 0.25, -(i as f64)];
        let reference = predict_serial(&entry.model, &q, 2);
        let got = slow.recv_line().unwrap().expect("slow reply");
        let expect = format!("OK 1 {}:{:?}", reference.assignments[0], reference.distances[0]);
        assert_eq!(got, expect, "slow reply {i} out of order or wrong");
    }
    mux.stop();
}

/// Admission control: once a model's pending-row budget is full, further
/// QUERYs answer `ERR BUSY …` immediately instead of queueing, and the
/// rejection is counted. FLUSH releases the backlog.
#[test]
fn busy_rejection_when_pending_budget_saturated() {
    let h = handle();
    h.register_model("m", Algorithm::Lloyd, centroids(2, 2, 1));
    // Huge deadline + huge batch target: admitted queries just pend.
    let cfg = MuxConfig::default()
        .with_max_delay_us(60_000_000)
        .with_batch_rows(1 << 20)
        .with_pending_budget(4);
    let mux = MuxServer::bind(h.clone(), "127.0.0.1:0", cfg).expect("bind mux");

    let mut filler = LineConn::connect(mux.addr()).unwrap();
    filler.send_line(&query_line("m", &queries(4, 2, 3), 2)).unwrap();

    // The budget (4 rows) is now exactly full; wait until the event loop
    // has admitted the filler, then a 1-row query must bounce.
    let entry = h.registry().get("m").unwrap();
    for _ in 0..500 {
        if entry.stats.pending_rows() == 4 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(entry.stats.pending_rows(), 4, "filler never admitted");

    let mut probe = Client::connect(mux.addr()).unwrap();
    let err = probe.query_block("m", &[0.0, 0.0], 2).expect_err("must be BUSY");
    assert_eq!(err.to_string(), "ERR BUSY model=m pending=4 budget=4");

    // FLUSH forces the pending batch through; the filler gets its reply
    // and the budget frees up.
    assert_eq!(probe.flush("m").unwrap(), "flushed m");
    let reply = filler.recv_line().unwrap().expect("filler reply");
    assert!(reply.starts_with("OK 4 "), "{reply}");
    for _ in 0..500 {
        if entry.stats.pending_rows() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(entry.stats.pending_rows(), 0, "budget must free after flush");
    // A fresh query is admitted again (released by another FLUSH, since
    // this config's deadline/size triggers are effectively infinite).
    filler.send_line(&query_line("m", &queries(1, 2, 8), 2)).unwrap();
    for _ in 0..500 {
        if entry.stats.pending_rows() == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(entry.stats.pending_rows(), 1, "budget must admit again after flush");
    probe.flush("m").unwrap();
    let reply = filler.recv_line().unwrap().expect("post-flush reply");
    assert!(reply.starts_with("OK 1 "), "{reply}");
    assert_eq!(entry.stats.busy_rejections(), 1);
    let stats = probe.stats("m").unwrap();
    assert!(stats.contains("busy=1"), "{stats}");
    mux.stop();
}

/// Hot swap with traffic in flight: a query admitted against v1 answers
/// with v1 centroids even after v2 is registered mid-flight; new queries
/// hit v2; ROLLBACK pins v1 again; SWAP selects explicit versions.
#[test]
fn hot_swap_in_flight_queries_and_rollback() {
    let h = handle();
    let c1 = centroids(2, 2, 11);
    h.register_model("m", Algorithm::Lloyd, c1);
    let cfg = MuxConfig::default().with_max_delay_us(60_000_000).with_batch_rows(1 << 20);
    let mux = MuxServer::bind(h.clone(), "127.0.0.1:0", cfg).expect("bind mux");

    let v1 = h.registry().get("m").unwrap();
    let q = queries(3, 2, 9);
    let v1_ref = predict_serial(&v1.model, &q, 2);

    // Admit against v1; the huge deadline keeps it pending.
    let mut pinned = LineConn::connect(mux.addr()).unwrap();
    pinned.send_line(&query_line("m", &q, 2)).unwrap();
    for _ in 0..500 {
        if v1.stats.pending_rows() == 3 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(v1.stats.pending_rows(), 3, "query never admitted");

    // v2 flips the served version while the v1 query is still queued.
    // Offset centroids guarantee different distances for the same rows.
    let mut c2v = v1.model.centroids.means.as_slice().to_vec();
    for x in &mut c2v {
        *x += 1000.0;
    }
    assert_eq!(h.register_model("m", Algorithm::Lloyd, DMatrix::from_vec(c2v, 2, 2)), 2);
    let v2 = h.registry().get("m").unwrap();
    assert_eq!(v2.model.version, 2);
    let v2_ref = predict_serial(&v2.model, &q, 2);

    // Drain: the in-flight query must answer against v1, not v2.
    let mut ctl = Client::connect(mux.addr()).unwrap();
    ctl.flush("m").unwrap();
    let reply = pinned.recv_line().unwrap().expect("pinned reply");
    let render = |r: &knor::serve::Prediction| {
        let mut s = "OK 3".to_string();
        for (a, dist) in r.assignments.iter().zip(&r.distances) {
            s.push_str(&format!(" {a}:{dist:?}"));
        }
        s
    };
    assert_eq!(reply, render(&v1_ref), "in-flight query must complete on v1");
    assert_ne!(reply, render(&v2_ref), "centroid offset failed to change distances");

    // Fresh queries route to v2 (small-deadline round trip via FLUSH).
    let round_trip = |conn: &mut LineConn, ctl: &mut Client| {
        conn.send_line(&query_line("m", &q, 2)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        ctl.flush("m").unwrap();
        conn.recv_line().unwrap().expect("reply")
    };
    assert_eq!(round_trip(&mut pinned, &mut ctl), render(&v2_ref), "new query must hit v2");

    // ROLLBACK pins v1; SWAP selects versions explicitly.
    assert_eq!(ctl.rollback("m").unwrap(), "serving m v1");
    assert_eq!(round_trip(&mut pinned, &mut ctl), render(&v1_ref), "rollback must restore v1");
    assert_eq!(ctl.swap("m", Some(2)).unwrap(), "serving m v2");
    assert_eq!(round_trip(&mut pinned, &mut ctl), render(&v2_ref));
    assert_eq!(ctl.swap("m", None).unwrap(), "serving m v2");
    assert!(ctl.swap("m", Some(9)).is_err(), "pinning a missing version must fail");
    assert!(ctl.swap("ghost", Some(1)).is_err());
    mux.stop();
}

/// Many concurrent small clients coalesce into large kernel batches: 16
/// round-tripping clients sending 4-row queries must average well above
/// their own batch size per kernel call.
#[test]
fn concurrent_small_clients_coalesce_into_large_batches() {
    let h = handle();
    h.register_model("m", Algorithm::Lloyd, centroids(8, 4, 5));
    let cfg = MuxConfig::default().with_max_delay_us(20_000);
    let mux = MuxServer::bind(h.clone(), "127.0.0.1:0", cfg).expect("bind mux");
    let addr = mux.addr();

    let clients = 16usize;
    let rounds = 4usize;
    std::thread::scope(|s| {
        for t in 0..clients {
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for r in 0..rounds {
                    let q = queries(4, 4, (t * 31 + r) as u64);
                    let out = c.query_block("m", &q, 4).expect("query");
                    assert_eq!(out.len(), 4);
                }
            });
        }
    });

    let entry = h.registry().get("m").unwrap();
    let snap = entry.stats.snapshot();
    assert_eq!(snap.queries, (clients * rounds * 4) as u64);
    assert!(
        snap.coalesced_mean >= 8.0,
        "coalesced mean {:.1} rows over {} batches — expected >= 2 requests per kernel call",
        snap.coalesced_mean,
        snap.coalesced_batches
    );
    assert_eq!(snap.pending, 0);
    mux.stop();
}

/// Pipelined requests on one connection answer strictly in request order
/// even when a cheap inline verb (LIST) finishes before a pending QUERY.
#[test]
fn pipelined_replies_stay_in_request_order() {
    let h = handle();
    h.register_model("m", Algorithm::Lloyd, centroids(2, 2, 2));
    let cfg = MuxConfig::default().with_max_delay_us(60_000_000).with_batch_rows(1 << 20);
    let mux = MuxServer::bind(h.clone(), "127.0.0.1:0", cfg).expect("bind mux");

    let mut conn = LineConn::connect(mux.addr()).unwrap();
    conn.send_line(&query_line("m", &[1.0, 1.0], 2)).unwrap();
    conn.send_line("LIST").unwrap();

    // Give the loop time to finish LIST while the QUERY still pends, then
    // release the QUERY from another connection.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut ctl = Client::connect(mux.addr()).unwrap();
    ctl.flush("m").unwrap();

    let first = conn.recv_line().unwrap().expect("first reply");
    let second = conn.recv_line().unwrap().expect("second reply");
    assert!(first.starts_with("OK 1 "), "QUERY must answer first: {first}");
    assert!(second.starts_with("OK ") && second.contains("m:v1"), "LIST second: {second}");
    mux.stop();
}
