//! CLI input validation: degenerate numeric flags must be rejected with a
//! clear one-line error and a nonzero exit *before* any engine runs —
//! never flow into an engine and surface as a downstream panic.

use std::process::Command;

fn knor() -> Command {
    Command::new(env!("CARGO_BIN_EXE_knor"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("knor-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_exits_zero_and_bad_flags_exit_two() {
    for args in [vec!["--help"], vec!["-h"], vec!["help"], vec!["im", "x.knor", "--help"]] {
        let out = knor().args(&args).output().expect("spawn knor");
        assert_eq!(out.status.code(), Some(0), "{args:?} must exit 0");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.starts_with("usage: knor"), "{args:?} → {text:?}");
    }
    // No arguments, or an unknown flag, is still a usage error on stderr.
    for args in [vec![], vec!["im", "x.knor", "--no-such-flag"]] {
        let out = knor().args(&args).output().expect("spawn knor");
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
        assert!(String::from_utf8_lossy(&out.stderr).starts_with("usage: knor"));
    }
}

/// Extract every flag token (`--long` or single-letter `-x`) from a usage
/// text — the same tokenization `scripts/check_doc_drift.sh` uses.
fn extract_flags(help: &str) -> Vec<String> {
    let mut flags: Vec<String> = help
        .split(|c: char| c.is_whitespace() || matches!(c, '[' | ']' | '|'))
        .filter(|t| {
            let long = t.starts_with("--")
                && t.len() > 2
                && t[2..].chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
            let short = t.len() == 2
                && t.starts_with('-')
                && t[1..].chars().all(|c| c.is_ascii_alphabetic());
            long || short
        })
        .map(str::to_string)
        .collect();
    flags.sort();
    flags.dedup();
    flags
}

/// The doc-drift gate as a test: every flag `knor --help` advertises must
/// appear in the README (which keeps a per-flag reference table).
#[test]
fn help_flags_are_documented_in_readme() {
    let out = knor().arg("--help").output().expect("spawn knor");
    assert!(out.status.success());
    let help = String::from_utf8_lossy(&out.stdout).into_owned();
    let flags = extract_flags(&help);
    assert!(flags.len() >= 30, "flag extraction broke: only {flags:?}");
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("read README.md");
    let missing: Vec<&String> = flags.iter().filter(|f| !readme.contains(f.as_str())).collect();
    assert!(missing.is_empty(), "flags in `knor --help` but not in README.md: {missing:?}");
}

#[test]
fn degenerate_numeric_flags_are_rejected_before_any_io() {
    // None of these files exist; every rejection must fire at parse time.
    for args in [
        vec!["im", "/nonexistent/x.knor", "-k", "0"],
        vec!["im", "/nonexistent/x.knor", "-k", "banana"],
        vec!["im", "/nonexistent/x.knor", "-i", "0"],
        vec!["im", "/nonexistent/x.knor", "-t", "0"],
        vec!["im", "/nonexistent/x.knor", "--seed", "eleven"],
        vec!["im", "/nonexistent/x.knor", "--batch", "0"],
        vec!["sem", "/nonexistent/x.knor", "--row-cache", "lots"],
        vec!["dist", "/nonexistent/x.knor", "--ranks", "0"],
        vec!["dist", "/nonexistent/x.knor", "--plane", "gpu"],
        vec!["gen", "/nonexistent/x.knor", "--scale", "0"],
        vec!["gen", "/nonexistent/x.knor", "--scale", "-0.5"],
        vec!["gen", "/nonexistent/x.knor", "--scale", "NaN"],
        vec!["train", "--model", "m", "--file", "f", "--engine", "gpu"],
        vec!["im", "/nonexistent/x.knor", "--kernel", "warp"],
        vec!["im", "/nonexistent/x.knor", "--tune", "maybe"],
        vec!["im", "/nonexistent/x.knor", "--pruning", "banana"],
        vec!["sem", "/nonexistent/x.knor", "--kernel", "avx512"],
        vec!["dist", "/nonexistent/x.knor", "--pruning", "elkan"],
    ] {
        let out = knor().args(&args).output().expect("spawn knor");
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.starts_with("knor: "), "{args:?} → {err:?}");
        assert_eq!(err.trim_end().lines().count(), 1, "{args:?}: one-line error, got {err:?}");
    }
}

#[test]
fn valid_flags_still_run_end_to_end() {
    let file = tmp("ok.knor");
    let gen = knor()
        .args(["gen", file.to_str().unwrap(), "--dataset", "friendster8", "--scale", "0.0002"])
        .output()
        .expect("spawn gen");
    assert!(gen.status.success(), "{}", String::from_utf8_lossy(&gen.stderr));

    let im = knor()
        .args(["im", file.to_str().unwrap(), "-k", "4", "-i", "5", "-t", "2"])
        .output()
        .expect("spawn im");
    assert!(im.status.success(), "{}", String::from_utf8_lossy(&im.stderr));

    // Yinyang end to end, with the pruning section of --stats.
    let yy = knor()
        .args([
            "im",
            file.to_str().unwrap(),
            "-k",
            "4",
            "-i",
            "5",
            "-t",
            "2",
            "--pruning",
            "yinyang",
            "--stats",
        ])
        .output()
        .expect("spawn im yinyang");
    assert!(yy.status.success(), "{}", String::from_utf8_lossy(&yy.stderr));
    let stdout = String::from_utf8_lossy(&yy.stdout);
    let prune = stdout
        .lines()
        .find(|l| l.starts_with("prune: "))
        .unwrap_or_else(|| panic!("--stats must print the prune line: {stdout}"));
    assert!(prune.contains("scheme=yinyang"), "{prune}");
    assert!(prune.contains("groups=1"), "k=4 → t=1: {prune}");
    assert!(prune.contains("bound_B="), "{prune}");
    assert!(prune.contains("io_skip_rows=0"), "direct plane never skips I/O: {prune}");

    // Post-parse domain checks still reject cleanly (fuzzifier domain).
    let fuzz = knor()
        .args(["im", file.to_str().unwrap(), "-k", "2", "--algo", "fuzzy", "--fuzz", "1.0"])
        .output()
        .expect("spawn fuzzy");
    assert_eq!(fuzz.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&fuzz.stderr).contains("--fuzz"));

    // dist over SEM ranks straight from the CLI, with the I/O summary.
    let dist = knor()
        .args([
            "dist",
            file.to_str().unwrap(),
            "-k",
            "4",
            "-i",
            "5",
            "--ranks",
            "2",
            "--plane",
            "sem",
            "--row-cache",
            "4",
            "--stats",
        ])
        .output()
        .expect("spawn dist+sem");
    assert!(dist.status.success(), "{}", String::from_utf8_lossy(&dist.stderr));
    let stdout = String::from_utf8_lossy(&dist.stdout);
    assert!(stdout.contains("knord:"), "{stdout}");
    assert!(stdout.contains("rank 0 io:"), "--stats must print per-rank I/O: {stdout}");
    assert!(stdout.contains("rank 1 io:"), "{stdout}");

    std::fs::remove_file(&file).unwrap();
}

#[test]
fn kernel_and_tune_flags_report_what_actually_ran() {
    let file = tmp("kern.knor");
    let gen = knor()
        .args(["gen", file.to_str().unwrap(), "--dataset", "friendster8", "--scale", "0.0002"])
        .output()
        .expect("spawn gen");
    assert!(gen.status.success(), "{}", String::from_utf8_lossy(&gen.stderr));

    // --kernel gemm under MTI (the default) downgrades to the exact tiled
    // path; --stats must say so in one explicit line.
    let gemm_mti = knor()
        .args(["im", file.to_str().unwrap(), "-k", "4", "-i", "3", "--kernel", "gemm", "--stats"])
        .output()
        .expect("spawn im gemm");
    assert!(gemm_mti.status.success(), "{}", String::from_utf8_lossy(&gemm_mti.stderr));
    let stdout = String::from_utf8_lossy(&gemm_mti.stdout);
    let note = stdout
        .lines()
        .find(|l| l.starts_with("kernel: "))
        .unwrap_or_else(|| panic!("--stats must print the kernel note: {stdout}"));
    assert!(note.contains("requested=gemm"), "{note}");
    assert!(note.contains("resolved=tiled"), "{note}");

    // Without pruning the request sticks, and --tune on reports tuned
    // tiles in the same note.
    let gemm_tuned = knor()
        .args([
            "im",
            file.to_str().unwrap(),
            "-k",
            "4",
            "-i",
            "3",
            "--pruning",
            "none",
            "--kernel",
            "gemm",
            "--tune",
            "on",
            "--stats",
        ])
        .output()
        .expect("spawn im gemm tuned");
    assert!(gemm_tuned.status.success(), "{}", String::from_utf8_lossy(&gemm_tuned.stderr));
    let stdout = String::from_utf8_lossy(&gemm_tuned.stdout);
    let note = stdout.lines().find(|l| l.starts_with("kernel: ")).expect("kernel note");
    assert!(note.contains("requested=gemm") && note.contains("resolved=gemm"), "{note}");
    assert!(note.contains("tuned=yes"), "{note}");

    // --tune cache writes the decision file next to the data and reuses
    // it (k=16 over 8 dims resolves Tiled, which takes tiles; a scalar
    // resolve would have nothing to tune).
    let cache = std::path::PathBuf::from(format!("{}.tune", file.display()));
    for _ in 0..2 {
        let run = knor()
            .args([
                "sem",
                file.to_str().unwrap(),
                "-k",
                "16",
                "-i",
                "3",
                "--tune",
                "cache",
                "--stats",
            ])
            .output()
            .expect("spawn sem tuned");
        assert!(run.status.success(), "{}", String::from_utf8_lossy(&run.stderr));
        let text = std::fs::read_to_string(&cache).expect("tune cache written");
        assert!(text.starts_with("knor-tune v1"), "{text}");
    }

    std::fs::remove_file(&file).unwrap();
    std::fs::remove_file(&cache).unwrap();
}
