//! Cross-module equivalence: every knor module and baseline must produce
//! the *same clustering* from the same initialization — the paper's claim
//! that knori/knors/knord and the frameworks run identical algorithms.

use knor::prelude::*;
use knor_baselines::gemm::gemm_lloyd;
use knor_baselines::mapreduce::{FrameworkProfile, MapReduceKmeans};
use knor_core::quality::{agreement, max_center_error, sse};
use knor_core::serial::lloyd_serial;

fn workload(n: usize, d: usize, seed: u64) -> (DMatrix, DMatrix) {
    let planted = MixtureSpec::friendster_like(n, d, seed).generate();
    (planted.data, planted.centers)
}

#[test]
fn all_modules_agree_on_one_init() {
    let (data, _) = workload(3000, 8, 101);
    let k = 12;
    let init = InitMethod::PlusPlus.initialize(&data, k, 17).to_matrix();
    let max_iters = 80;

    let serial = lloyd_serial(&data, k, &InitMethod::Given(init.clone()), 0, max_iters, 0.0);
    assert!(serial.converged, "reference run must converge");
    let reference_sse = serial.sse.unwrap();

    // knori, pruned and unpruned.
    for pruning in [Pruning::Mti, Pruning::None] {
        let r = Kmeans::new(
            KmeansConfig::new(k)
                .with_init(InitMethod::Given(init.clone()))
                .with_pruning(pruning)
                .with_threads(3)
                .with_max_iters(max_iters),
        )
        .fit(&data);
        assert_eq!(r.niters, serial.niters, "knori({pruning:?}) trajectory diverged");
        assert!(agreement(&r.assignments, &serial.assignments, k) > 0.999);
        let rel = (r.sse.unwrap() - reference_sse).abs() / reference_sse;
        assert!(rel < 1e-9, "knori({pruning:?}) SSE off by {rel}");
    }

    // knors from a file.
    let mut path = std::env::temp_dir();
    path.push(format!("knor-cross-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();
    let sem = SemKmeans::new(
        SemConfig::new(k)
            .with_init(SemInit::Given(init.clone()))
            .with_threads(2)
            .with_page_size(512)
            .with_task_size(256)
            .with_max_iters(max_iters)
            .with_sse(true),
    )
    .fit(&path)
    .unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(sem.kmeans.niters, serial.niters, "knors trajectory diverged");
    assert!(agreement(&sem.kmeans.assignments, &serial.assignments, k) > 0.999);

    // knord across 3 ranks.
    let dist = DistKmeans::new(
        DistConfig::new(k, 3, 2)
            .with_init(InitMethod::Given(init.clone()))
            .with_max_iters(max_iters)
            .with_sse(true),
    )
    .fit(&data);
    assert_eq!(dist.niters, serial.niters, "knord trajectory diverged");
    assert!(agreement(&dist.assignments, &serial.assignments, k) > 0.999);

    // GEMM and framework personas.
    let g = gemm_lloyd(&data, &init, max_iters);
    assert!(agreement(&g.assignments, &serial.assignments, k) > 0.999);
    let mr = MapReduceKmeans::new(FrameworkProfile::mllib_like(), 4).fit(&data, &init, max_iters);
    assert!(agreement(&mr.assignments, &serial.assignments, k) > 0.999);
    let mr_sse = sse(&data, &mr.centroids, &mr.assignments);
    assert!((mr_sse - reference_sse).abs() / reference_sse < 1e-9);
}

/// The tiled kernel's contract across engines: in single-worker
/// deterministic configurations, knori, knors and knord each reproduce the
/// serial reference *bitwise* — assignments, centroids and iteration count.
#[test]
fn tiled_kernel_bitwise_across_all_three_engines() {
    let (data, _) = workload(1200, 6, 202);
    let k = 9;
    let init = InitMethod::Forgy.initialize(&data, k, 23).to_matrix();
    let max_iters = 70;
    let serial = lloyd_serial(&data, k, &InitMethod::Given(init.clone()), 0, max_iters, 0.0);
    assert!(serial.converged);

    // knori.
    let im = Kmeans::new(
        KmeansConfig::new(k)
            .with_init(InitMethod::Given(init.clone()))
            .with_threads(1)
            .with_scheduler(SchedulerKind::Static)
            .with_pruning(Pruning::None)
            .with_kernel(KernelKind::Tiled)
            .with_max_iters(max_iters),
    )
    .fit(&data);
    assert_eq!(im.assignments, serial.assignments, "knori assignments");
    assert_eq!(im.centroids, serial.centroids, "knori centroids must match bitwise");
    assert_eq!(im.niters, serial.niters);

    // knors (no row cache, one thread: rows process in serial order).
    let mut path = std::env::temp_dir();
    path.push(format!("knor-cross-tiled-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();
    let sem = SemKmeans::new(
        SemConfig::new(k)
            .with_init(SemInit::Given(init.clone()))
            .with_threads(1)
            .with_scheduler(SchedulerKind::Static)
            .with_page_size(512)
            .with_task_size(128)
            .with_pruning(Pruning::None)
            .with_row_cache_bytes(0)
            .with_kernel(KernelKind::Tiled)
            .with_max_iters(max_iters),
    )
    .fit(&path)
    .unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(sem.kmeans.assignments, serial.assignments, "knors assignments");
    assert_eq!(sem.kmeans.centroids, serial.centroids, "knors centroids must match bitwise");
    assert_eq!(sem.kmeans.niters, serial.niters);

    // knord (one rank, one thread).
    let dist = DistKmeans::new(
        DistConfig::new(k, 1, 1)
            .with_init(InitMethod::Given(init))
            .with_pruning(Pruning::None)
            .with_kernel(KernelKind::Tiled)
            .with_max_iters(max_iters),
    )
    .fit(&data);
    assert_eq!(dist.assignments, serial.assignments, "knord assignments");
    assert_eq!(dist.centroids, serial.centroids, "knord centroids must match bitwise");
    assert_eq!(dist.niters, serial.niters);
}

/// The approximate kernels' contract across engines: FMA and blocked-GEMM
/// trajectories stay within the 1e-9 band of the serial reference, and in
/// single-worker deterministic configurations the three engines agree with
/// each other **bitwise** for a given kernel (same staging order, same
/// arithmetic).
#[test]
fn fused_kernels_agree_across_all_three_engines() {
    let (data, _) = workload(1200, 6, 303);
    let k = 9;
    let init = InitMethod::Forgy.initialize(&data, k, 31).to_matrix();
    let max_iters = 70;
    let serial = lloyd_serial(&data, k, &InitMethod::Given(init.clone()), 0, max_iters, 0.0);
    assert!(serial.converged);

    for kernel in [KernelKind::Fma, KernelKind::Gemm] {
        let im = Kmeans::new(
            KmeansConfig::new(k)
                .with_init(InitMethod::Given(init.clone()))
                .with_threads(1)
                .with_scheduler(SchedulerKind::Static)
                .with_pruning(Pruning::None)
                .with_kernel(kernel)
                .with_max_iters(max_iters),
        )
        .fit(&data);
        // Within the 1e-9 band of the exact trajectory: fused rounding can
        // only shift distances, not reorder well-separated winners.
        assert_eq!(im.niters, serial.niters, "{kernel:?} trajectory length diverged");
        assert_eq!(im.assignments, serial.assignments, "{kernel:?} assignments");
        for (a, b) in im.centroids.as_slice().iter().zip(serial.centroids.as_slice()) {
            assert!(
                (a - b).abs() <= 1e-9_f64.max(b.abs() * 1e-9),
                "{kernel:?} centroid {a} vs exact {b}"
            );
        }

        // knors, same kernel.
        let mut path = std::env::temp_dir();
        path.push(format!("knor-cross-fused-{}-{kernel:?}.knor", std::process::id()));
        matrix_io::write_matrix(&path, &data).unwrap();
        let sem = SemKmeans::new(
            SemConfig::new(k)
                .with_init(SemInit::Given(init.clone()))
                .with_threads(1)
                .with_scheduler(SchedulerKind::Static)
                .with_page_size(512)
                .with_task_size(128)
                .with_pruning(Pruning::None)
                .with_row_cache_bytes(0)
                .with_kernel(kernel)
                .with_max_iters(max_iters),
        )
        .fit(&path)
        .unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(sem.kmeans.assignments, im.assignments, "{kernel:?} knors assignments");
        assert_eq!(
            sem.kmeans.centroids, im.centroids,
            "{kernel:?} knors centroids must match knori bitwise"
        );
        assert_eq!(sem.kmeans.niters, im.niters);

        // knord (one rank, one thread), same kernel.
        let dist = DistKmeans::new(
            DistConfig::new(k, 1, 1)
                .with_init(InitMethod::Given(init.clone()))
                .with_pruning(Pruning::None)
                .with_kernel(kernel)
                .with_max_iters(max_iters),
        )
        .fit(&data);
        assert_eq!(dist.assignments, im.assignments, "{kernel:?} knord assignments");
        assert_eq!(
            dist.centroids, im.centroids,
            "{kernel:?} knord centroids must match knori bitwise"
        );
        assert_eq!(dist.niters, im.niters);
    }
}

/// The algorithm layer's core promise: write an algorithm once, get
/// knori + knors + knord for free. In single-worker deterministic
/// configurations all three engines stage rows in the same order and run
/// the same map/update arithmetic, so each non-Lloyd algorithm must
/// reproduce the same centroids and assignments **bitwise** across
/// engines; multi-rank knord must still agree on the clustering.
#[test]
fn every_algorithm_agrees_across_all_three_engines() {
    use knor_core::algo::Algorithm;

    let (data, _) = workload(1500, 6, 505);
    let k = 8;
    let init = InitMethod::Forgy.initialize(&data, k, 31).to_matrix();
    let max_iters = 25;
    let seed = 13u64; // feeds mini-batch sampling identically everywhere

    let mut path = std::env::temp_dir();
    path.push(format!("knor-cross-algos-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();

    for algo in
        [Algorithm::Spherical, Algorithm::Fuzzy { m: 2.0 }, Algorithm::MiniBatch { batch: 256 }]
    {
        let name = algo.name();

        let im = Kmeans::new(
            KmeansConfig::new(k)
                .with_init(InitMethod::Given(init.clone()))
                .with_algo(algo.clone())
                .with_seed(seed)
                .with_threads(1)
                .with_scheduler(SchedulerKind::Static)
                .with_sse(false)
                .with_max_iters(max_iters),
        )
        .fit(&data);

        let sem = SemKmeans::new(
            SemConfig::new(k)
                .with_init(SemInit::Given(init.clone()))
                .with_algo(algo.clone())
                .with_seed(seed)
                .with_threads(1)
                .with_scheduler(SchedulerKind::Static)
                .with_page_size(512)
                .with_task_size(128)
                .with_row_cache_bytes(0)
                .with_max_iters(max_iters),
        )
        .fit(&path)
        .unwrap();

        let dist = DistKmeans::new(
            DistConfig::new(k, 1, 1)
                .with_init(InitMethod::Given(init.clone()))
                .with_algo(algo.clone())
                .with_seed(seed)
                .with_scheduler(SchedulerKind::Static)
                .with_max_iters(max_iters),
        )
        .fit(&data);

        assert_eq!(im.niters, sem.kmeans.niters, "{name}: knors trajectory diverged");
        assert_eq!(im.niters, dist.niters, "{name}: knord trajectory diverged");
        assert_eq!(im.assignments, sem.kmeans.assignments, "{name}: knors assignments");
        assert_eq!(im.assignments, dist.assignments, "{name}: knord assignments");
        assert_eq!(im.centroids, sem.kmeans.centroids, "{name}: knors centroids must be bitwise");
        assert_eq!(im.centroids, dist.centroids, "{name}: knord centroids must be bitwise");

        // Multi-rank knord: the allreduced sums/counts/weights walk the
        // same trajectory up to FP merge order.
        let dist3 = DistKmeans::new(
            DistConfig::new(k, 3, 2)
                .with_init(InitMethod::Given(init.clone()))
                .with_algo(algo.clone())
                .with_seed(seed)
                .with_max_iters(max_iters),
        )
        .fit(&data);
        assert!(
            agreement(&dist3.assignments, &im.assignments, k) > 0.99,
            "{name}: multi-rank knord diverged"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

/// The PR-5 plane matrix, part 1: knord with a single SEM rank *is*
/// knors — same plane code, same file, same budgets ⇒ bitwise-identical
/// assignments, centroids, trajectory and per-iteration I/O record, for
/// every kernel with MTI on and off.
#[test]
fn dist_sem_single_rank_bitwise_matches_knors() {
    let (data, _) = workload(1600, 6, 606);
    let k = 8;
    let init = InitMethod::Forgy.initialize(&data, k, 41).to_matrix();
    let max_iters = 40;
    let mut path = std::env::temp_dir();
    path.push(format!("knor-cross-plane1-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();

    for pruning in [Pruning::Mti, Pruning::None] {
        for kernel in [KernelKind::Scalar, KernelKind::Tiled, KernelKind::NormTrick] {
            let tag = format!("pruning={pruning:?} kernel={kernel:?}");
            let sem = SemKmeans::new(
                SemConfig::new(k)
                    .with_init(SemInit::Given(init.clone()))
                    .with_threads(2)
                    .with_scheduler(SchedulerKind::Static)
                    .with_page_size(512)
                    .with_task_size(128)
                    .with_pruning(pruning)
                    .with_row_cache_bytes(1 << 20)
                    .with_cache_interval(2)
                    .with_kernel(kernel)
                    .with_max_iters(max_iters),
            )
            .fit(&path)
            .unwrap();

            // Match knors' budgets and cache interval exactly, so the
            // refresh schedules align.
            let mut pcfg =
                SemPlaneConfig::default().with_page_size(512).with_row_cache_bytes(1 << 20);
            pcfg.cache_interval = 2;
            let dist = DistKmeans::new(
                DistConfig::new(k, 1, 2)
                    .with_init(InitMethod::Given(init.clone()))
                    .with_scheduler(SchedulerKind::Static)
                    .with_task_size(128)
                    .with_pruning(pruning)
                    .with_kernel(kernel)
                    .with_plane(RankPlane::Sem(pcfg))
                    .with_max_iters(max_iters),
            )
            .fit_file(&path)
            .unwrap();

            assert_eq!(dist.assignments, sem.kmeans.assignments, "{tag}: assignments");
            assert_eq!(dist.centroids, sem.kmeans.centroids, "{tag}: centroids must be bitwise");
            assert_eq!(dist.niters, sem.kmeans.niters, "{tag}: trajectory");
            // The single rank's private I/O record is knors' record.
            assert_eq!(dist.rank_io.len(), 1, "{tag}");
            assert_eq!(dist.rank_io[0].io.len(), sem.io.len(), "{tag}");
            for (a, b) in dist.rank_io[0].io.iter().zip(&sem.io) {
                assert_eq!(a.active_rows, b.active_rows, "{tag} iter {}", a.iter);
                assert_eq!(a.rc_hits, b.rc_hits, "{tag} iter {}", a.iter);
                assert_eq!(a.bytes_requested, b.bytes_requested, "{tag} iter {}", a.iter);
                assert_eq!(a.bytes_read, b.bytes_read, "{tag} iter {}", a.iter);
            }
            // The row cache must actually have engaged, or this proved
            // nothing about the hit/miss staging path.
            let hits: u64 = sem.io.iter().map(|i| i.rc_hits).sum();
            assert!(hits > 0, "{tag}: row cache never hit");
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// The PR-5 plane matrix, part 2: at R ∈ {2, 4}, knord over SEM ranks is
/// bitwise-identical to knord over in-memory ranks — the canonical
/// rank-order allreduce plus in-order staged commits make the trajectory
/// independent of where the rows physically live. Every kernel, MTI on
/// and off.
#[test]
fn dist_sem_bitwise_matches_dist_in_memory_across_ranks() {
    let (data, _) = workload(1800, 6, 707);
    let k = 9;
    let init = InitMethod::Forgy.initialize(&data, k, 5).to_matrix();
    let max_iters = 30;
    let mut path = std::env::temp_dir();
    path.push(format!("knor-cross-plane2-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();

    for ranks in [2usize, 4] {
        for pruning in [Pruning::Mti, Pruning::None] {
            for kernel in [KernelKind::Scalar, KernelKind::Tiled, KernelKind::NormTrick] {
                let tag = format!("R={ranks} pruning={pruning:?} kernel={kernel:?}");
                let base = DistConfig::new(k, ranks, 2)
                    .with_init(InitMethod::Given(init.clone()))
                    .with_scheduler(SchedulerKind::Static)
                    .with_task_size(128)
                    .with_pruning(pruning)
                    .with_kernel(kernel)
                    .with_max_iters(max_iters)
                    .with_sse(true);
                let mem = DistKmeans::new(base.clone()).fit(&data);
                let sem = DistKmeans::new(base.with_plane(RankPlane::Sem(
                    SemPlaneConfig::default().with_page_size(512).with_row_cache_bytes(1 << 20),
                )))
                .fit_file(&path)
                .unwrap();
                assert_eq!(sem.assignments, mem.assignments, "{tag}: assignments");
                assert_eq!(sem.centroids, mem.centroids, "{tag}: centroids must be bitwise");
                assert_eq!(sem.niters, mem.niters, "{tag}: trajectory");
                assert_eq!(
                    sem.sse.map(f64::to_bits),
                    mem.sse.map(f64::to_bits),
                    "{tag}: SSE must be bitwise"
                );
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// The PR-5 plane matrix, part 3: every non-Lloyd algorithm walks the
/// same bitwise trajectory on SEM ranks as on in-memory ranks.
#[test]
fn every_algorithm_bitwise_across_rank_planes() {
    use knor_core::algo::Algorithm;

    let (data, _) = workload(1500, 6, 808);
    let k = 8;
    let init = InitMethod::Forgy.initialize(&data, k, 9).to_matrix();
    let max_iters = 20;
    let mut path = std::env::temp_dir();
    path.push(format!("knor-cross-plane3-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();

    for algo in
        [Algorithm::Spherical, Algorithm::Fuzzy { m: 2.0 }, Algorithm::MiniBatch { batch: 256 }]
    {
        let name = algo.name();
        let base = DistConfig::new(k, 2, 2)
            .with_init(InitMethod::Given(init.clone()))
            .with_algo(algo.clone())
            .with_seed(13)
            .with_scheduler(SchedulerKind::Static)
            .with_task_size(128)
            .with_max_iters(max_iters);
        let mem = DistKmeans::new(base.clone()).fit(&data);
        let sem = DistKmeans::new(base.with_plane(RankPlane::Sem(
            SemPlaneConfig::default().with_page_size(512).with_row_cache_bytes(1 << 20),
        )))
        .fit_file(&path)
        .unwrap();
        assert_eq!(sem.assignments, mem.assignments, "{name}: assignments");
        assert_eq!(sem.centroids, mem.centroids, "{name}: centroids must be bitwise");
        assert_eq!(sem.niters, mem.niters, "{name}: trajectory");
        if matches!(algo, Algorithm::MiniBatch { .. }) {
            // The subsampling filter runs before any I/O: SEM ranks must
            // have fetched only the in-batch rows.
            let active: u64 =
                sem.rank_io.iter().flat_map(|r| r.io.iter()).map(|i| i.active_rows).sum();
            assert!(
                active < (sem.niters as u64) * 1500,
                "mini-batch SEM ranks fetched more than the sampled batches"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// A dataset larger than any single rank's row-cache budget must still
/// complete under SEM ranks — correctness never depends on cache hits —
/// and still match the in-memory plane bitwise.
#[test]
fn dist_sem_handles_data_larger_than_rank_caches() {
    let (data, _) = workload(4000, 16, 909); // 512 KB of rows
    let k = 8;
    let init = InitMethod::Forgy.initialize(&data, k, 3).to_matrix();
    let mut path = std::env::temp_dir();
    path.push(format!("knor-cross-plane4-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();

    let base = DistConfig::new(k, 2, 2)
        .with_init(InitMethod::Given(init))
        .with_scheduler(SchedulerKind::Static)
        .with_max_iters(30)
        .with_sse(true);
    let mem = DistKmeans::new(base.clone()).fit(&data);
    // 8 KB row cache + 8 KB page cache per rank: ~3% of a rank's slice.
    let sem = DistKmeans::new(
        base.with_plane(RankPlane::Sem(
            SemPlaneConfig::default()
                .with_page_size(4096)
                .with_row_cache_bytes(8 << 10)
                .with_page_cache_bytes(8 << 10),
        )),
    )
    .fit_file(&path)
    .unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(sem.assignments, mem.assignments);
    assert_eq!(sem.centroids, mem.centroids, "tight-budget SEM ranks must stay bitwise");
    assert_eq!(sem.niters, mem.niters);
    // The budget really was too small to hold a slice: device reads far
    // exceed one pass's worth of a fully-cached run.
    let read: u64 = sem.rank_io.iter().flat_map(|r| r.io.iter()).map(|i| i.bytes_read).sum();
    assert!(read as usize > 4000 * 16 * 8, "caches absorbed everything; budget not tight");
}

/// PR 7: per-node centroid replication must be invisible in the results.
/// For every engine × kernel × pruning mode (and every non-Lloyd
/// algorithm), a replicated run reproduces the shared-copy run **bitwise**
/// — assignments, centroids and trajectory — because the replicas are
/// op-log copies of the canonical merge, applied at a barrier.
#[test]
fn replication_bitwise_across_engines_kernels_and_algorithms() {
    use knor::numa::Topology;

    let (data, _) = workload(1400, 6, 910);
    let k = 9;
    let init = InitMethod::Forgy.initialize(&data, k, 12).to_matrix();
    let max_iters = 30;

    let mut path = std::env::temp_dir();
    path.push(format!("knor-cross-replica-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();

    for pruning in [Pruning::Mti, Pruning::None] {
        for kernel in [KernelKind::Scalar, KernelKind::Tiled, KernelKind::NormTrick] {
            let tag = format!("pruning={pruning:?} kernel={kernel:?}");

            // knori on a synthetic 2-node split of 4 workers.
            let im = |rep: Replication| {
                Kmeans::new(
                    KmeansConfig::new(k)
                        .with_init(InitMethod::Given(init.clone()))
                        .with_threads(4)
                        .with_topology(Topology::synthetic(2, 2))
                        .with_scheduler(SchedulerKind::Static)
                        .with_kernel(kernel)
                        .with_pruning(pruning)
                        .with_replication(rep)
                        .with_max_iters(max_iters),
                )
                .fit(&data)
            };
            let off = im(Replication::Off);
            let on = im(Replication::On);
            assert_eq!(on.assignments, off.assignments, "{tag}: knori assignments");
            assert_eq!(on.centroids, off.centroids, "{tag}: knori centroids must be bitwise");
            assert_eq!(on.niters, off.niters, "{tag}: knori trajectory");
            assert!(on.numa.replicated && !off.numa.replicated, "{tag}");
            assert!(on.total_publish_bytes() > 0, "{tag}: replicas never published");

            // knors over the same synthetic topology.
            let sem = |rep: Replication| {
                SemKmeans::new(
                    SemConfig::new(k)
                        .with_init(SemInit::Given(init.clone()))
                        .with_threads(4)
                        .with_topology(Topology::synthetic(2, 2))
                        .with_scheduler(SchedulerKind::Static)
                        .with_page_size(512)
                        .with_task_size(128)
                        .with_pruning(pruning)
                        .with_row_cache_bytes(1 << 20)
                        .with_kernel(kernel)
                        .with_replication(rep)
                        .with_max_iters(max_iters),
                )
                .fit(&path)
                .unwrap()
            };
            let soff = sem(Replication::Off);
            let son = sem(Replication::On);
            assert_eq!(son.kmeans.assignments, soff.kmeans.assignments, "{tag}: knors");
            assert_eq!(son.kmeans.centroids, soff.kmeans.centroids, "{tag}: knors bitwise");
            assert_eq!(son.kmeans.niters, soff.kmeans.niters, "{tag}: knors trajectory");
            // Replication must not change what knors reads off the device.
            // Exact equality is too strong: two workers missing the same
            // row-cache page concurrently may both fetch it, so either run
            // can read a few duplicate pages — allow that race slack while
            // still catching any real change to the read set.
            let race_slack = 8 * 512u64; // a handful of duplicated pages
            for (a, b) in son.io.iter().zip(&soff.io) {
                assert!(
                    a.bytes_read.abs_diff(b.bytes_read) <= race_slack,
                    "{tag}: knors iter {} I/O diverged: on={} off={}",
                    a.iter,
                    a.bytes_read,
                    b.bytes_read
                );
            }

            // knord: 2 ranks × 2 threads, replicas forced on inside every
            // rank's engine (per-rank topology is flat in-process).
            let dist = |rep: Replication| {
                DistKmeans::new(
                    DistConfig::new(k, 2, 2)
                        .with_init(InitMethod::Given(init.clone()))
                        .with_scheduler(SchedulerKind::Static)
                        .with_task_size(128)
                        .with_pruning(pruning)
                        .with_kernel(kernel)
                        .with_replication(rep)
                        .with_max_iters(max_iters),
                )
                .fit(&data)
            };
            let doff = dist(Replication::Off);
            let don = dist(Replication::On);
            assert_eq!(don.assignments, doff.assignments, "{tag}: knord assignments");
            assert_eq!(don.centroids, doff.centroids, "{tag}: knord centroids must be bitwise");
            assert_eq!(don.niters, doff.niters, "{tag}: knord trajectory");
        }
    }

    // Every non-Lloyd algorithm, replicated vs shared on knori.
    for algo in
        [Algorithm::Spherical, Algorithm::Fuzzy { m: 2.0 }, Algorithm::MiniBatch { batch: 256 }]
    {
        let name = algo.name();
        let run = |rep: Replication| {
            Kmeans::new(
                KmeansConfig::new(k)
                    .with_init(InitMethod::Given(init.clone()))
                    .with_algo(algo.clone())
                    .with_seed(13)
                    .with_threads(4)
                    .with_topology(Topology::synthetic(2, 2))
                    .with_scheduler(SchedulerKind::Static)
                    .with_replication(rep)
                    .with_max_iters(20),
            )
            .fit(&data)
        };
        let off = run(Replication::Off);
        let on = run(Replication::On);
        assert_eq!(on.assignments, off.assignments, "{name}: assignments");
        assert_eq!(on.centroids, off.centroids, "{name}: centroids must be bitwise");
        assert_eq!(on.niters, off.niters, "{name}: trajectory");
    }
    std::fs::remove_file(&path).unwrap();
}

/// PR 7, serving half: a pool serving from node-local model clones answers
/// batched predict calls bitwise identically to the shared-model pool.
#[test]
fn replicated_serve_pool_batched_predict_is_bitwise() {
    use knor::numa::Topology;

    let (data, _) = workload(800, 6, 911);
    let k = 8;
    let trained = Kmeans::new(KmeansConfig::new(k).with_seed(5).with_max_iters(40)).fit(&data);

    let serve = |rep: Replication| {
        let h = ServeHandle::start(
            ServeConfig::default()
                .with_threads(4)
                .with_topology(Topology::synthetic(2, 2))
                .with_replication(rep),
        );
        h.register_model("m", Algorithm::Lloyd, trained.centroids.clone());
        h
    };
    let shared = serve(Replication::Off);
    let replicated = serve(Replication::On);
    assert!(!shared.pool_replicated());
    assert!(replicated.pool_replicated());

    let queries = knor_workloads::uniform_matrix(600, 6, 77);
    for _ in 0..3 {
        let a = shared.predict("m", &queries).unwrap();
        let b = replicated.predict("m", &queries).unwrap();
        assert_eq!(b.assignments, a.assignments);
        assert_eq!(
            b.distances.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            a.distances.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "served distances must be bitwise identical"
        );
    }
}

#[test]
fn planted_centers_recovered_by_every_module() {
    // Noise-free mixture: center recovery is only well-posed when every
    // point belongs to a component (the default spec carries 2% diffuse
    // background mass, under which a centroid may legitimately park on a
    // noise pocket).
    let planted = knor_workloads::MixtureSpec {
        noise: 0.0,
        ..knor_workloads::MixtureSpec::friendster_like(4000, 8, 202)
    }
    .generate();
    let (data, centers) = (planted.data, planted.centers);
    let k = 16;
    let init = InitMethod::PlusPlus.initialize(&data, k, 4).to_matrix();

    let knori = Kmeans::new(
        KmeansConfig::new(k).with_init(InitMethod::Given(init.clone())).with_max_iters(100),
    )
    .fit(&data);
    // Recovered centers should sit within a small multiple of sigma (0.5)
    // of the planted ones.
    let err = max_center_error(&knori.centroids, &centers);
    assert!(err < 1.5, "knori center error {err}");

    let dist = DistKmeans::new(
        DistConfig::new(k, 2, 2).with_init(InitMethod::Given(init)).with_max_iters(100),
    )
    .fit(&data);
    let err = max_center_error(&dist.centroids, &centers);
    assert!(err < 1.5, "knord center error {err}");
}

#[test]
fn sem_under_tight_memory_budget_still_correct() {
    // knors with pathologically small caches must stay correct (only
    // slower) — correctness never depends on cache hits.
    let (data, _) = workload(1500, 16, 303);
    let k = 8;
    let init = InitMethod::PlusPlus.initialize(&data, k, 2).to_matrix();
    let serial = lloyd_serial(&data, k, &InitMethod::Given(init.clone()), 0, 60, 0.0);

    let mut path = std::env::temp_dir();
    path.push(format!("knor-tight-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();
    let sem = SemKmeans::new(
        SemConfig::new(k)
            .with_init(SemInit::Given(init))
            .with_threads(2)
            .with_page_size(256)
            .with_page_cache_bytes(1024) // 4 pages
            .with_row_cache_bytes(512) // 4 rows
            .with_task_size(64)
            .with_max_iters(60),
    )
    .fit(&path)
    .unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(sem.kmeans.niters, serial.niters);
    assert!(agreement(&sem.kmeans.assignments, &serial.assignments, k) > 0.999);
}

#[test]
fn uniform_worst_case_converges_everywhere() {
    // RM-style uniform data: the paper's worst case for convergence. Cap
    // iterations and verify every module walks the same trajectory.
    let data = knor_workloads::uniform_matrix(2000, 8, 404);
    let k = 10;
    let init = InitMethod::Forgy.initialize(&data, k, 9).to_matrix();
    let iters = 15;

    let serial = lloyd_serial(&data, k, &InitMethod::Given(init.clone()), 0, iters, 0.0);
    let knori = Kmeans::new(
        KmeansConfig::new(k)
            .with_init(InitMethod::Given(init.clone()))
            .with_threads(2)
            .with_max_iters(iters),
    )
    .fit(&data);
    let dist = DistKmeans::new(
        DistConfig::new(k, 2, 1).with_init(InitMethod::Given(init)).with_max_iters(iters),
    )
    .fit(&data);
    assert_eq!(knori.niters, serial.niters);
    assert_eq!(dist.niters, serial.niters);
    assert!(agreement(&knori.assignments, &serial.assignments, k) > 0.995);
    assert!(agreement(&dist.assignments, &serial.assignments, k) > 0.995);
}
