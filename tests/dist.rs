//! knord integration tests: the distributed engine must compute the same
//! clustering as serial Lloyd's at any rank count, and the choice of
//! all-reduce transport (ring vs star) must not change a single bit of the
//! result.

use knor::prelude::*;
use knor_core::quality::agreement;
use knor_core::serial::lloyd_serial;

fn workload(n: usize, d: usize, seed: u64) -> DMatrix {
    MixtureSpec::friendster_like(n, d, seed).generate().data
}

#[test]
fn rank_counts_1_2_4_match_serial() {
    let data = workload(2400, 8, 51);
    let k = 10;
    let init = InitMethod::PlusPlus.initialize(&data, k, 5).to_matrix();
    let serial = lloyd_serial(&data, k, &InitMethod::Given(init.clone()), 0, 80, 0.0);
    assert!(serial.converged, "reference run must converge");

    for ranks in [1usize, 2, 4] {
        let dist = DistKmeans::new(
            DistConfig::new(k, ranks, 2)
                .with_init(InitMethod::Given(init.clone()))
                .with_max_iters(80)
                .with_sse(true),
        )
        .fit(&data);
        assert!(dist.converged, "R={ranks} did not converge");
        assert_eq!(dist.niters, serial.niters, "R={ranks} trajectory diverged");
        assert!(
            agreement(&dist.assignments, &serial.assignments, k) > 0.999,
            "R={ranks} clustering disagrees with serial"
        );
        let rel = (dist.sse.unwrap() - serial.sse.unwrap()).abs() / serial.sse.unwrap();
        assert!(rel < 1e-9, "R={ranks} SSE off by {rel}");
    }
}

#[test]
fn ring_and_star_give_bitwise_identical_centroids() {
    let data = workload(1600, 6, 52);
    let k = 8;
    let init = InitMethod::PlusPlus.initialize(&data, k, 9).to_matrix();
    for ranks in [2usize, 3, 4] {
        let run = |algo: ReduceAlgo| {
            DistKmeans::new(
                DistConfig::new(k, ranks, 2)
                    .with_init(InitMethod::Given(init.clone()))
                    .with_reduce(algo)
                    // Static scheduling pins rows to workers, so the only
                    // varying component between the two runs is the
                    // all-reduce transport — exactly what is under test.
                    // (Stealing schedulers reshuffle which worker sums
                    // which row, which perturbs FP merge order within a
                    // rank regardless of the collective.)
                    .with_scheduler(SchedulerKind::Static)
                    .with_max_iters(60),
            )
            .fit(&data)
        };
        let ring = run(ReduceAlgo::Ring);
        let star = run(ReduceAlgo::Star);
        assert_eq!(ring.niters, star.niters, "R={ranks}: iteration counts differ");
        assert_eq!(ring.assignments, star.assignments, "R={ranks}: assignments differ");
        for (i, (a, b)) in
            ring.centroids.as_slice().iter().zip(star.centroids.as_slice()).enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "R={ranks}: centroid element {i} differs bitwise: {a} vs {b}"
            );
        }
    }
}

#[test]
fn pruning_never_changes_the_distributed_result() {
    let data = workload(2000, 8, 53);
    let k = 12;
    let init = InitMethod::PlusPlus.initialize(&data, k, 2).to_matrix();
    let base = DistConfig::new(k, 3, 2).with_init(InitMethod::Given(init)).with_max_iters(60);
    let knord = DistKmeans::new(base.clone()).fit(&data);
    let knord_minus = DistKmeans::new(base.with_pruning(Pruning::None)).fit(&data);
    assert_eq!(knord.niters, knord_minus.niters);
    // FP merge order differs between delta and full accumulation: compare
    // clusterings, not bits.
    assert!(agreement(&knord.assignments, &knord_minus.assignments, k) > 0.999);
    // knord must actually prune (Clause 1 saves both data access and the
    // per-row compute on every rank).
    let p = knord.total_prune();
    assert!(p.clause1_rows > 0);
    assert!(p.dist_computations < knord_minus.total_prune().dist_computations / 2);
}

#[test]
fn per_iteration_comm_is_flat_in_n() {
    // knord's wire traffic per iteration is O(k·d·R), independent of n —
    // the property that makes the decentralized design scale (Fig. 11).
    let k = 6;
    let small = workload(600, 8, 54);
    let large = workload(4800, 8, 54);
    let run = |data: &DMatrix| {
        DistKmeans::new(DistConfig::new(k, 3, 1).with_seed(7).with_max_iters(12)).fit(data)
    };
    let a = run(&small);
    let b = run(&large);
    let per_iter = |r: &DistResult| r.iters.iter().map(|i| i.max_rank_comm_bytes).max().unwrap();
    let small_comm = per_iter(&a);
    let large_comm = per_iter(&b);
    assert_eq!(
        small_comm, large_comm,
        "per-iteration reduce traffic must not depend on n: {small_comm} vs {large_comm}"
    );
}
