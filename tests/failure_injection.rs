//! Failure injection: corrupted inputs and degenerate configurations must
//! fail loudly and cleanly, never silently mis-cluster.

use knor::prelude::*;
use knor_safs::RowStore;
use std::io::Write;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("knor-failinj-{}-{name}", std::process::id()));
    p
}

#[test]
fn corrupt_magic_is_rejected() {
    let p = tmp("magic.knor");
    std::fs::write(&p, b"NOTAKNORFILE____________________").unwrap();
    assert!(RowStore::open(&p, 4096).is_err());
    assert!(SemKmeans::new(SemConfig::new(2)).fit(&p).is_err());
    std::fs::remove_file(&p).unwrap();
}

#[test]
fn truncated_payload_errors_on_read() {
    // Valid header claiming 1000 rows, but payload cut short.
    let data = MixtureSpec::friendster_like(1000, 4, 1).generate().data;
    let p = tmp("trunc.knor");
    matrix_io::write_matrix(&p, &data).unwrap();
    let full = std::fs::read(&p).unwrap();
    let mut f = std::fs::File::create(&p).unwrap();
    f.write_all(&full[..full.len() / 2]).unwrap();
    drop(f);
    // Open succeeds (header intact); reading the missing tail must error.
    let store = RowStore::open(&p, 256).unwrap();
    let mut buf = vec![0u8; 256];
    let last_page = store.npages() - 1;
    assert!(store.read_page(last_page, &mut buf).is_err());
    // And a full SEM run surfaces the failure rather than mis-clustering.
    let result = std::panic::catch_unwind(|| {
        SemKmeans::new(SemConfig::new(2).with_threads(1).with_page_size(256)).fit(&p)
    });
    // Anything but a clean Ok(Ok) is acceptable: io error or engine panic,
    // both loud.
    if let Ok(Ok(_)) = result {
        panic!("truncated file must not cluster successfully");
    }
    std::fs::remove_file(&p).unwrap();
}

#[test]
fn missing_file_is_an_error() {
    let p = tmp("missing.knor");
    assert!(SemKmeans::new(SemConfig::new(2)).fit(&p).is_err());
    assert!(matrix_io::read_matrix(&p).is_err());
}

#[test]
#[should_panic(expected = "exceeds n")]
fn k_larger_than_n_panics() {
    let data = DMatrix::zeros(3, 2);
    let _ = Kmeans::new(KmeansConfig::new(5)).fit(&data);
}

#[test]
#[should_panic]
fn given_init_with_wrong_shape_panics() {
    let data = MixtureSpec::friendster_like(100, 4, 2).generate().data;
    let bad = DMatrix::zeros(3, 7); // wrong d
    let _ = Kmeans::new(KmeansConfig::new(3).with_init(InitMethod::Given(bad))).fit(&data);
}

#[test]
fn zero_rows_of_noise_only_data_still_terminates() {
    // Pathological: all points identical. Must converge, not spin.
    let data = DMatrix::from_vec(vec![1.0; 50 * 4], 50, 4);
    let r = Kmeans::new(KmeansConfig::new(3).with_seed(1).with_max_iters(10)).fit(&data);
    assert!(r.niters <= 10);
    assert!(r.centroids.as_slice().iter().all(|x| x.is_finite()));
    assert!(r.sse.unwrap() < 1e-18);
}

#[test]
fn dist_with_more_ranks_than_rows_is_clean() {
    let data = MixtureSpec::friendster_like(6, 3, 3).generate().data;
    let r = DistKmeans::new(DistConfig::new(2, 4, 1).with_seed(2).with_max_iters(20)).fit(&data);
    assert_eq!(r.assignments.len(), 6);
    assert!(r.converged);
}

#[test]
fn sem_rank_prefetcher_death_completes_and_is_surfaced() {
    // One SEM rank loses a prefetch-pool thread mid-run. Prefetching is
    // best-effort (a lost fetch only costs a synchronous read later), so
    // the run must complete with the *same clustering* — but the dead
    // thread must be surfaced in that rank's `panicked_io_threads`, never
    // silently swallowed.
    let data = MixtureSpec::friendster_like(900, 6, 31).generate().data;
    let k = 6;
    let init = InitMethod::Forgy.initialize(&data, k, 4).to_matrix();
    let p = tmp("prefetch-death.knor");
    matrix_io::write_matrix(&p, &data).unwrap();

    let base = DistConfig::new(k, 2, 2)
        .with_init(InitMethod::Given(init))
        .with_scheduler(SchedulerKind::Static)
        .with_max_iters(30);
    let healthy = DistKmeans::new(base.clone()).fit(&data);
    let wounded = DistKmeans::new(
        base.with_plane(RankPlane::Sem(
            SemPlaneConfig::default().with_page_size(512).with_prefetch(true),
        ))
        .with_inject_prefetch_panic_rank(1),
    )
    .fit_file(&p)
    .unwrap();
    std::fs::remove_file(&p).unwrap();

    assert_eq!(wounded.assignments, healthy.assignments, "clustering must survive the death");
    assert_eq!(wounded.centroids, healthy.centroids);
    assert_eq!(wounded.niters, healthy.niters);
    assert_eq!(wounded.rank_io.len(), 2);
    assert_eq!(
        wounded.rank_io[1].panicked_io_threads, 1,
        "the dead prefetch thread must be surfaced on its rank"
    );
    assert_eq!(wounded.rank_io[0].panicked_io_threads, 0, "healthy rank stays clean");
}
