//! Property-based tests over the public API.

use knor::prelude::*;
use knor_core::quality::agreement;
use knor_core::serial::lloyd_serial;
use proptest::prelude::*;

fn arb_matrix(max_n: usize, max_d: usize) -> impl Strategy<Value = DMatrix> {
    (2usize..max_n, 1usize..max_d).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-100.0f64..100.0, n * d)
            .prop_map(move |v| DMatrix::from_vec(v, n, d))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MTI pruning is exact: pruned and unpruned runs walk identical
    /// trajectories on arbitrary data (ties are measure-zero for random
    /// floats).
    #[test]
    fn mti_never_changes_the_result(data in arb_matrix(120, 6), k in 2usize..8) {
        prop_assume!(k <= data.nrow());
        let init = InitMethod::Forgy.initialize(&data, k, 1).to_matrix();
        let base = KmeansConfig::new(k)
            .with_init(InitMethod::Given(init))
            .with_threads(1)
            .with_scheduler(SchedulerKind::Static)
            .with_max_iters(30);
        let pruned = Kmeans::new(base.clone().with_pruning(Pruning::Mti)).fit(&data);
        let full = Kmeans::new(base.with_pruning(Pruning::None)).fit(&data);
        prop_assert_eq!(pruned.niters, full.niters);
        prop_assert_eq!(&pruned.assignments, &full.assignments);
        for (a, b) in pruned.centroids.as_slice().iter().zip(full.centroids.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-9_f64.max(b.abs() * 1e-9));
        }
    }

    /// The parallel engine at one thread reproduces serial Lloyd's
    /// bit-for-bit.
    #[test]
    fn one_thread_engine_is_serial(data in arb_matrix(100, 5), k in 1usize..6) {
        prop_assume!(k <= data.nrow());
        let init = InitMethod::Forgy.initialize(&data, k, 2).to_matrix();
        let serial = lloyd_serial(&data, k, &InitMethod::Given(init.clone()), 0, 25, 0.0);
        let par = Kmeans::new(
            KmeansConfig::new(k)
                .with_init(InitMethod::Given(init))
                .with_threads(1)
                .with_scheduler(SchedulerKind::Static)
                .with_pruning(Pruning::None)
                .with_max_iters(25),
        )
        .fit(&data);
        prop_assert_eq!(par.assignments, serial.assignments);
        prop_assert_eq!(par.centroids, serial.centroids);
    }

    /// The tiled kernel is bitwise identical to the serial per-row scan on
    /// arbitrary shapes: remainder dimensions (`d % 4 != 0`), `k == 1`,
    /// and blocks smaller than one row tile are all covered by the ranges.
    #[test]
    fn tiled_kernel_bitwise_matches_serial_scan(
        data in arb_matrix(150, 9),
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= data.nrow());
        let (n, d) = (data.nrow(), data.ncol());
        let cents = knor_core::Centroids::from_matrix(
            &InitMethod::Forgy.initialize(&data, k, seed).to_matrix(),
        );
        let rk = KernelKind::Tiled.resolve(k, d, false);
        let (mut best, mut best_dist) = (Vec::new(), Vec::new());
        knor_core::kernel::assign_rows(
            data.as_slice(), d, &cents, &rk, &[], &mut best, &mut best_dist, true,
        );
        for r in 0..n {
            let (a, da) = knor_core::distance::nearest(data.row(r), &cents.means, k);
            prop_assert!(best[r] == a as u32, "row {r}: idx {} vs {}", best[r], a);
            prop_assert!(best_dist[r].to_bits() == da.to_bits(), "row {r} distance bits differ");
        }
    }

    /// The norm-trick kernel reproduces serial-scan distances to ≤ 1e-9
    /// relative, across the same shape edge cases.
    #[test]
    fn normtrick_kernel_within_tolerance_of_serial_scan(
        data in arb_matrix(150, 9),
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= data.nrow());
        let (n, d) = (data.nrow(), data.ncol());
        let cents = knor_core::Centroids::from_matrix(
            &InitMethod::Forgy.initialize(&data, k, seed).to_matrix(),
        );
        let mut cnorms = vec![0.0; k];
        knor_core::kernel::centroid_sqnorms(&cents, &mut cnorms);
        let rk = KernelKind::NormTrick.resolve(k, d, false);
        prop_assert_eq!(rk.kind, knor_core::ResolvedKind::NormTrick);
        let (mut best, mut best_dist) = (Vec::new(), Vec::new());
        knor_core::kernel::assign_rows(
            data.as_slice(), d, &cents, &rk, &cnorms, &mut best, &mut best_dist, true,
        );
        for (r, &bd) in best_dist.iter().enumerate().take(n) {
            let (_, da) = knor_core::distance::nearest(data.row(r), &cents.means, k);
            // The cancellation in ‖x‖² − 2x·c + ‖c‖² carries absolute error
            // proportional to the norms, so compare squared distances with
            // a norm-scaled bound (≫ 1e-9 relative whenever the distance is
            // not vanishingly small against the operand magnitudes).
            let xn = knor_core::kernel::sqnorm(data.row(r));
            let cn = cnorms.iter().cloned().fold(0.0f64, f64::max);
            let tol_sq = 1e-12 * (xn + cn + 1.0);
            prop_assert!(
                (bd * bd - da * da).abs() <= tol_sq,
                "row {}: norm-trick {} vs exact {}", r, bd, da
            );
        }
    }

    /// The FMA and blocked-GEMM kernels reproduce serial-scan distances
    /// within the 1e-9 band across the same shape edge cases: remainder
    /// dimensions (`d % 4 != 0`), `k == 1`, and blocks smaller than one
    /// row tile.
    #[test]
    fn fused_kernels_within_tolerance_of_serial_scan(
        data in arb_matrix(150, 9),
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= data.nrow());
        let (n, d) = (data.nrow(), data.ncol());
        let cents = knor_core::Centroids::from_matrix(
            &InitMethod::Forgy.initialize(&data, k, seed).to_matrix(),
        );
        let mut cnorms = vec![0.0; k];
        knor_core::kernel::centroid_sqnorms(&cents, &mut cnorms);
        for kernel in [KernelKind::Fma, KernelKind::Gemm] {
            let rk = kernel.resolve(k, d, false);
            let (mut best, mut best_dist) = (Vec::new(), Vec::new());
            knor_core::kernel::assign_rows(
                data.as_slice(), d, &cents, &rk, &cnorms, &mut best, &mut best_dist, true,
            );
            for r in 0..n {
                let (_, da) = knor_core::distance::nearest(data.row(r), &cents.means, k);
                let bd = best_dist[r];
                // Squared-distance bound: the norm-trick cancellation term
                // plus the fused-rounding 1e-9 relative band.
                let xn = knor_core::kernel::sqnorm(data.row(r));
                let cn = cnorms.iter().cloned().fold(0.0f64, f64::max);
                let tol_sq = 1e-12 * (xn + cn + 1.0) + 1e-9 * da * da;
                prop_assert!(
                    (bd * bd - da * da).abs() <= tol_sq,
                    "{:?} row {}: {} vs exact {}", kernel, r, bd, da
                );
                // Winners may legitimately flip on near-ties, but the
                // chosen centroid must itself sit within the band of the
                // true optimum.
                let c = best[r] as usize;
                let chosen_sq: f64 = data.row(r).iter()
                    .zip(&cents.means[c * d..(c + 1) * d])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                prop_assert!(
                    chosen_sq <= da * da + tol_sq,
                    "{:?} row {}: chosen centroid {} not within band of optimum {}",
                    kernel, r, chosen_sq.sqrt(), da
                );
            }
        }
    }

    /// Autotuner picks depend only on shape and seed, never on thread
    /// count: with an identical (injected, deterministic) prober, a
    /// 1-thread and an N-thread run produce the same tune table and the
    /// same clustering.
    #[test]
    fn autotuner_thread_count_invariance(seed in 0u64..200, threads in 2usize..6) {
        fn det_prober(case: &knor_core::tune::ProbeCase) -> f64 {
            (case.row_tile as f64).log2() * 3.0 + (case.cent_tile as f64 - 16.0).abs()
        }
        // k·d = 72 > the scalar cutoff, so the probed kind takes tiles
        // and the table is guaranteed to gain an entry.
        let data = MixtureSpec::friendster_like(400, 6, seed).generate().data;
        let k = 12;
        let init = InitMethod::Forgy.initialize(&data, k, seed).to_matrix();
        let run = |nthreads: usize| {
            let tuning = knor_core::Tuning::on()
                .with_table(std::sync::Arc::new(knor_core::TuneTable::with_prober(det_prober)))
                .with_seed(7);
            let r = Kmeans::new(
                KmeansConfig::new(k)
                    .with_init(InitMethod::Given(init.clone()))
                    .with_threads(nthreads)
                    .with_max_iters(20)
                    .with_tuning(tuning.clone()),
            )
            .fit(&data);
            (r, tuning.table.to_text())
        };
        let (a, ta) = run(1);
        let (b, tb) = run(threads);
        prop_assert!(ta.lines().count() > 1, "tuner never probed:\n{}", ta);
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(a.niters, b.niters);
        prop_assert!(agreement(&a.assignments, &b.assignments, k) > 0.999);
    }

    /// SSE never increases across Lloyd's iterations (the monotone
    /// convergence invariant), checked through the serial reference.
    #[test]
    fn lloyds_descends(data in arb_matrix(80, 4), k in 1usize..5) {
        prop_assume!(k <= data.nrow());
        let r = lloyd_serial(&data, k, &InitMethod::Forgy, 3, 20, 0.0);
        // Recompute SSE against the final centroids with optimal
        // assignment: must not beat the reported one by more than epsilon.
        let opt = knor_core::quality::sse_optimal_assignment(&data, &r.centroids);
        prop_assert!(opt <= r.sse.unwrap() * (1.0 + 1e-12) + 1e-9);
    }

    /// Matrix binary format round-trips arbitrary finite data.
    #[test]
    fn matrix_io_round_trips(data in arb_matrix(60, 6)) {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "knor-prop-io-{}-{}.knor",
            std::process::id(),
            data.nrow() * 31 + data.ncol()
        ));
        matrix_io::write_matrix(&path, &data).unwrap();
        let back = matrix_io::read_matrix(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Thread count never changes the clustering (only the schedule).
    #[test]
    fn thread_count_invariance(seed in 0u64..500, threads in 2usize..6) {
        let data = MixtureSpec::friendster_like(400, 4, seed).generate().data;
        let k = 5;
        let init = InitMethod::Forgy.initialize(&data, k, seed).to_matrix();
        let a = Kmeans::new(
            KmeansConfig::new(k)
                .with_init(InitMethod::Given(init.clone()))
                .with_threads(1)
                .with_max_iters(40),
        )
        .fit(&data);
        let b = Kmeans::new(
            KmeansConfig::new(k)
                .with_init(InitMethod::Given(init))
                .with_threads(threads)
                .with_max_iters(40),
        )
        .fit(&data);
        prop_assert_eq!(a.niters, b.niters);
        prop_assert!(agreement(&a.assignments, &b.assignments, k) > 0.999);
    }

    /// Per-node centroid replication never changes the result: on
    /// arbitrary data and arbitrary synthetic node splits, the replicated
    /// run is **bitwise** the shared-copy run (assignments, centroids and
    /// trajectory) — the op-log publish is a copy of the canonical merge,
    /// never a recomputation.
    #[test]
    fn replication_invariance(
        data in arb_matrix(120, 6),
        k in 2usize..8,
        nodes in 1usize..5,
    ) {
        prop_assume!(k <= data.nrow());
        let init = InitMethod::Forgy.initialize(&data, k, 4).to_matrix();
        let run = |rep: Replication| {
            Kmeans::new(
                KmeansConfig::new(k)
                    .with_init(InitMethod::Given(init.clone()))
                    .with_threads(4)
                    .with_topology(knor::numa::Topology::synthetic(nodes, 4usize.div_ceil(nodes)))
                    .with_scheduler(SchedulerKind::Static)
                    .with_replication(rep)
                    .with_max_iters(25),
            )
            .fit(&data)
        };
        let off = run(Replication::Off);
        let on = run(Replication::On);
        prop_assert_eq!(on.niters, off.niters);
        prop_assert_eq!(&on.assignments, &off.assignments);
        prop_assert_eq!(&on.centroids, &off.centroids);
        prop_assert!(on.numa.replicated && !off.numa.replicated);
    }

    /// Distributed rank count never changes the clustering.
    /// Yinyang's exactness invariant: after drift loosening, every group
    /// lower bound still under-estimates the true distance to every
    /// non-assigned centroid of its group (and the loosened upper bound
    /// still over-estimates the assigned distance) — so a row the global
    /// filter settles really does keep its nearest centroid.
    #[test]
    fn yinyang_loosened_bounds_stay_valid(
        data in arb_matrix(60, 4),
        k in 2usize..24,
        seed in 0u64..50,
    ) {
        use knor::core::centroids::Centroids;
        use knor::core::distance::{dist, nearest};
        use knor::core::driver::{filter_row_yy, yy_init_bounds};
        use knor::core::pruning::{PruneCounters, YinyangState};
        use knor::matrix::shared::SharedRows;

        prop_assume!(k <= data.nrow());
        let (n, d) = (data.nrow(), data.ncol());
        let init = InitMethod::Forgy.initialize(&data, k, seed).to_matrix();
        let cents = Centroids::from_matrix(&init);
        let mut yy = YinyangState::group(&cents);
        let t = yy.t();
        let assign: SharedRows<u32> = SharedRows::new(n, 0);
        let upper: SharedRows<f64> = SharedRows::new(n, 0.0);
        let lower: SharedRows<f64> = SharedRows::new(n * t, 0.0);
        let mut counters = PruneCounters::default();
        // Exact init pass: nearest assignment + per-group bounds.
        for r in 0..n {
            let v = data.row(r);
            let (a, du) = nearest(v, &cents.means, k);
            // Safety: single-threaded test, no concurrent rows.
            unsafe {
                *assign.get_mut(r) = a as u32;
                *upper.get_mut(r) = du;
            }
            yy_init_bounds(r, v, a, &cents, &yy, &lower, &mut counters);
        }
        // Move every centroid by a deterministic perturbation and record
        // the true drifts, exactly as the coordinator window does.
        let mut moved = init.as_slice().to_vec();
        for (i, x) in moved.iter_mut().enumerate() {
            *x += ((i as f64 * 0.7 + seed as f64) * 1.3).sin() * 1.5;
        }
        let moved = Centroids::from_matrix(&DMatrix::from_vec(moved, k, d));
        for c in 0..k {
            yy.drift[c] = dist(cents.mean(c), moved.mean(c));
        }
        yy.update_group_drift();
        for r in 0..n {
            let keep = filter_row_yy(r, &assign, &upper, &lower, &yy, &mut counters);
            let v = data.row(r);
            // Safety: single-threaded test.
            let a = unsafe { *assign.get(r) } as usize;
            for c in 0..k {
                if c == a {
                    continue;
                }
                let g = yy.group_of[c] as usize;
                let lb = unsafe { *lower.get(r * t + g) };
                let true_d = dist(v, moved.mean(c));
                prop_assert!(
                    lb <= true_d + 1e-9,
                    "row {}: loosened bound {} overshot d(v, c{}) = {}", r, lb, c, true_d
                );
            }
            let u = unsafe { *upper.get(r) };
            let ua = dist(v, moved.mean(a));
            prop_assert!(u + 1e-9 >= ua, "row {}: upper {} lost its assignment at {}", r, u, ua);
            if !keep {
                let (best, _) = nearest(v, &moved.means, k);
                prop_assert!(best == a, "clause-1 settled row {} moved to {}", r, best);
            }
        }
    }

    #[test]
    fn rank_count_invariance(seed in 0u64..200, ranks in 1usize..5) {
        let data = MixtureSpec::friendster_like(300, 4, seed).generate().data;
        let k = 4;
        let init = InitMethod::Forgy.initialize(&data, k, seed ^ 7).to_matrix();
        let serial = lloyd_serial(&data, k, &InitMethod::Given(init.clone()), 0, 30, 0.0);
        let dist = DistKmeans::new(
            DistConfig::new(k, ranks, 1)
                .with_init(InitMethod::Given(init))
                .with_max_iters(30),
        )
        .fit(&data);
        prop_assert_eq!(dist.niters, serial.niters);
        prop_assert!(agreement(&dist.assignments, &serial.assignments, k) > 0.999);
    }
}
