//! Steady-state allocation discipline: once an engine's buffers are warm,
//! extra iterations must not touch the heap.
//!
//! A counting global allocator wraps the system allocator for this test
//! binary. Two knori runs differ only in their iteration cap; since every
//! per-iteration buffer (kernel scratch, merge staging, queue partitions,
//! stats vectors) is allocated up front or grow-only, the longer run must
//! perform exactly as many allocations as the shorter one.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use knor_core::{InitMethod, KernelKind, Kmeans, KmeansConfig, Pruning};
use knor_sched::SchedulerKind;
use knor_workloads::uniform_matrix;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn fit_alloc_count(data: &knor_matrix::DMatrix, init: &knor_matrix::DMatrix, iters: usize) -> u64 {
    let solver = Kmeans::new(
        KmeansConfig::new(init.nrow())
            .with_init(InitMethod::Given(init.clone()))
            .with_threads(2)
            .with_scheduler(SchedulerKind::Static)
            .with_pruning(Pruning::None)
            .with_kernel(KernelKind::Tiled)
            .with_task_size(256)
            .with_sse(false)
            .with_max_iters(iters),
    );
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = solver.fit(data);
    let after = ALLOCS.load(Ordering::Relaxed);
    // The run must actually execute all requested iterations, or the
    // comparison below proves nothing.
    assert_eq!(r.niters, iters, "workload converged early; pick harder data");
    after - before
}

#[test]
fn steady_state_iterations_allocate_nothing() {
    // Uniform noise with k = 24 keeps reassignments churning well past the
    // iteration caps used here.
    let data = uniform_matrix(4096, 16, 7);
    let init = InitMethod::Forgy.initialize(&data, 24, 3).to_matrix();

    // Warm up once (lazy runtime state: thread-local init, feature
    // detection, stdio) so both measured runs see identical conditions.
    let _ = fit_alloc_count(&data, &init, 4);

    let short = fit_alloc_count(&data, &init, 4);
    let long = fit_alloc_count(&data, &init, 16);
    assert_eq!(
        long,
        short,
        "12 extra iterations allocated {} times — the steady-state hot path must stay \
         allocation-free",
        long - short
    );
}
