//! The pluggable algorithm layer: every non-Lloyd `MmAlgorithm` must match
//! its serial reference, produce sane weights, and run on all three
//! engines — write the algorithm once, get knori + knors + knord for free.

use knor::prelude::*;
use knor_baselines::minibatch::minibatch_kmeans;
use knor_baselines::spherical::spherical_kmeans;
use knor_core::algo::Algorithm;
use knor_core::quality::agreement;
use proptest::prelude::*;

fn arb_matrix(max_n: usize, max_d: usize) -> impl Strategy<Value = DMatrix> {
    (8usize..max_n, 1usize..max_d).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-100.0f64..100.0, n * d)
            .prop_map(move |v| DMatrix::from_vec(v, n, d))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Driver-backed spherical k-means matches the serial spherical
    /// baseline within 1e-9 across random shapes (single-worker
    /// deterministic configuration: same map order, same update
    /// arithmetic).
    #[test]
    fn spherical_engine_matches_serial_baseline(data in arb_matrix(120, 6), k in 2usize..8) {
        prop_assume!(k <= data.nrow());
        let init = InitMethod::Forgy.initialize(&data, k, 1).to_matrix();
        let serial = spherical_kmeans(&data, &init, 30);
        let par = Kmeans::new(
            KmeansConfig::new(k)
                .with_init(InitMethod::Given(init))
                .with_algo(Algorithm::Spherical)
                .with_threads(1)
                .with_scheduler(SchedulerKind::Static)
                .with_sse(false)
                .with_max_iters(30),
        )
        .fit(&data);
        prop_assert_eq!(par.niters, serial.niters);
        prop_assert_eq!(&par.assignments, &serial.assignments);
        for (a, b) in par.centroids.as_slice().iter().zip(serial.centroids.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-9_f64.max(b.abs() * 1e-9), "{a} vs {b}");
        }
    }

    /// The fuzzy map phase produces per-row weights that are finite and
    /// normalized — in (0, 1], with the c=best membership term contributing
    /// exactly 1 to the normalizer — for arbitrary data and fuzzifiers.
    #[test]
    fn fuzzy_weights_finite_and_normalized(
        data in arb_matrix(80, 5),
        k in 2usize..7,
        m in 1.2f64..4.0,
    ) {
        prop_assume!(k <= data.nrow());
        let algo = Algorithm::Fuzzy { m }.resolve(k, data.nrow(), 0);
        let cents = knor_core::Centroids::from_matrix(
            &InitMethod::Forgy.initialize(&data, k, 2).to_matrix(),
        );
        for row in data.rows() {
            let o = algo.map(row, &cents);
            prop_assert!(o.weight.is_finite(), "weight not finite");
            prop_assert!(o.weight > 0.0 && o.weight <= 1.0, "weight {} not in (0,1]", o.weight);
            prop_assert!((o.cluster as usize) < k);
        }
    }

    /// Driver-backed fuzzy runs end-to-end on arbitrary shapes: centroids
    /// stay finite and the weighted merge never divides by zero.
    #[test]
    fn fuzzy_engine_is_robust(data in arb_matrix(100, 5), k in 2usize..6) {
        prop_assume!(k <= data.nrow());
        let r = Kmeans::new(
            KmeansConfig::new(k)
                .with_algo(Algorithm::Fuzzy { m: 2.0 })
                .with_seed(3)
                .with_threads(2)
                .with_sse(false)
                .with_max_iters(15),
        )
        .fit(&data);
        prop_assert!(r.centroids.as_slice().iter().all(|x| x.is_finite()));
        prop_assert_eq!(r.assignments.len(), data.nrow());
    }
}

fn mixture(n: usize, d: usize, seed: u64) -> DMatrix {
    MixtureSpec::friendster_like(n, d, seed).generate().data
}

/// The retired standalone mini-batch loop and the driver-backed engine
/// agree exactly on a tiny fixed-seed instance (satellite parity guard).
#[test]
fn minibatch_engine_matches_serial_baseline() {
    let data = mixture(600, 5, 41);
    let k = 5;
    let init = InitMethod::Forgy.initialize(&data, k, 6).to_matrix();
    let base = minibatch_kmeans(&data, &init, 64, 12, 3);
    let par = Kmeans::new(
        KmeansConfig::new(k)
            .with_init(InitMethod::Given(init))
            .with_algo(Algorithm::MiniBatch { batch: 64 })
            .with_seed(3) // feeds the sampling hash, like the baseline's seed
            .with_threads(1)
            .with_scheduler(SchedulerKind::Static)
            .with_sse(false)
            .with_max_iters(12),
    )
    .fit(&data);
    assert_eq!(par.niters, 12, "mini-batch runs its full batch budget");
    assert_eq!(par.centroids, base.centroids, "centroids must match the serial mirror bitwise");
    assert_eq!(par.assignments, base.assignments);
}

/// Mini-batch improves cluster quality over the initialization through the
/// real engine, and multithreaded runs agree with the single-threaded one.
#[test]
fn minibatch_engine_improves_and_parallelizes() {
    let data = mixture(3000, 8, 47);
    let k = 10;
    let init = InitMethod::Forgy.initialize(&data, k, 2).to_matrix();
    let run = |threads: usize| {
        Kmeans::new(
            KmeansConfig::new(k)
                .with_init(InitMethod::Given(init.clone()))
                .with_algo(Algorithm::MiniBatch { batch: 512 })
                .with_seed(11)
                .with_threads(threads)
                .with_max_iters(25),
        )
        .fit(&data)
    };
    let one = run(1);
    let four = run(4);
    // Same batches, same learning-rate merges — only FP merge order
    // differs between thread counts.
    assert!(agreement(&one.assignments, &four.assignments, k) > 0.99);
    let init_sse = knor_core::quality::sse(
        &data,
        &init,
        &data
            .rows()
            .map(|v| knor_core::distance::nearest(v, init.as_slice(), k).0 as u32)
            .collect::<Vec<_>>(),
    );
    assert!(one.sse.unwrap() < init_sse, "mini-batch should improve on the init");
}

/// knors runs mini-batch with the subsample filter ahead of the I/O layer:
/// out-of-batch rows cost no requested bytes, so per-iteration active rows
/// collapse from `n` (iteration 0) to ≈`batch`.
#[test]
fn minibatch_on_sem_skips_io_for_out_of_batch_rows() {
    let data = mixture(2000, 8, 53);
    let k = 8;
    let init = InitMethod::Forgy.initialize(&data, k, 9).to_matrix();
    let mut path = std::env::temp_dir();
    path.push(format!("knor-algos-mb-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();
    let batch = 200usize;
    let r = SemKmeans::new(
        SemConfig::new(k)
            .with_init(SemInit::Given(init))
            .with_algo(Algorithm::MiniBatch { batch })
            .with_seed(5)
            .with_threads(2)
            .with_page_size(256)
            .with_task_size(128)
            .with_row_cache_bytes(0)
            .with_max_iters(20),
    )
    .fit(&path)
    .unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(r.io[0].active_rows, 2000, "iteration 0 is a full pass");
    let full_bytes = 2000u64 * 8 * 8;
    for io in &r.io[1..] {
        // Bernoulli(batch/n) stays well under 2× the target batch.
        assert!(
            io.active_rows < (2 * batch) as u64,
            "iter {}: {} rows touched, batch is {batch}",
            io.iter,
            io.active_rows
        );
        assert!(io.bytes_requested < full_bytes / 2, "iter {}: I/O not skipped", io.iter);
    }
}

/// Spherical through knori at several thread counts agrees with the serial
/// baseline on well-separated data (FP merge order is the only freedom).
#[test]
fn spherical_multithreaded_agrees_with_baseline() {
    let data = mixture(2500, 8, 59);
    let k = 12;
    let init = InitMethod::PlusPlus.initialize(&data, k, 4).to_matrix();
    let serial = spherical_kmeans(&data, &init, 60);
    for threads in [2usize, 4] {
        let r = Kmeans::new(
            KmeansConfig::new(k)
                .with_init(InitMethod::Given(init.clone()))
                .with_algo(Algorithm::Spherical)
                .with_threads(threads)
                .with_sse(false)
                .with_max_iters(60),
        )
        .fit(&data);
        assert!(
            agreement(&r.assignments, &serial.assignments, k) > 0.999,
            "threads={threads} diverged from the serial baseline"
        );
        // Centroids stay unit-norm through the parallel merge.
        for c in 0..k {
            let norm: f64 = r.centroids.row(c).iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-9, "centroid {c} not unit at {threads} threads");
        }
    }
}

/// The weighted (fuzzy) merge is genuinely different from Lloyd's: on data
/// with soft boundaries the two algorithms settle on different centroids,
/// while both remain valid clusterings of the planted structure.
#[test]
fn fuzzy_merge_differs_from_lloyd_but_clusters_sanely() {
    let data = mixture(2000, 6, 67);
    let k = 8;
    let init = InitMethod::PlusPlus.initialize(&data, k, 7).to_matrix();
    let lloyd = Kmeans::new(
        KmeansConfig::new(k).with_init(InitMethod::Given(init.clone())).with_max_iters(60),
    )
    .fit(&data);
    let fuzzy = Kmeans::new(
        KmeansConfig::new(k)
            .with_init(InitMethod::Given(init))
            .with_algo(Algorithm::Fuzzy { m: 2.0 })
            .with_threads(3)
            .with_max_iters(60),
    )
    .fit(&data);
    // Same planted structure recovered...
    assert!(agreement(&fuzzy.assignments, &lloyd.assignments, k) > 0.95);
    // ...but the weighted merge moves the centroids measurably.
    let max_delta = fuzzy
        .centroids
        .as_slice()
        .iter()
        .zip(lloyd.centroids.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_delta > 1e-6, "fuzzy update collapsed onto the plain mean");
}

/// The knord allreduce ships the weights lane only for algorithms whose
/// update reads it: Lloyd's per-iteration payload keeps the paper's
/// `(k·d + k + scalars)` shape, weighted algorithms pay exactly `k` more
/// f64 lanes.
#[test]
fn weights_lane_on_wire_only_for_weighted_algorithms() {
    let data = mixture(600, 4, 73);
    let k = 6;
    let init = InitMethod::Forgy.initialize(&data, k, 3).to_matrix();
    let run = |algo: Algorithm| {
        DistKmeans::new(
            DistConfig::new(k, 2, 1)
                .with_init(InitMethod::Given(init.clone()))
                .with_algo(algo)
                .with_pruning(Pruning::None)
                .with_max_iters(4),
        )
        .fit(&data)
    };
    let lloyd = run(Algorithm::Lloyd);
    let fuzzy = run(Algorithm::Fuzzy { m: 2.0 });
    let spherical = run(Algorithm::Spherical);
    let lb = lloyd.iters[1].comm_bytes;
    let fb = fuzzy.iters[1].comm_bytes;
    assert!(fb > lb, "weighted payload must exceed Lloyd's ({fb} vs {lb})");
    // Ring reduce-scatter + all-gather sends 2·(R−1)·payload/R per rank;
    // with R = 2 that is exactly one payload, so the delta is k lanes.
    assert_eq!(fb - lb, (k * 8) as u64, "weights lane should cost exactly k f64s at R=2");
    // Algorithms whose update ignores weights keep Lloyd's payload shape.
    assert_eq!(spherical.iters[1].comm_bytes, lb, "spherical must not ship the weights lane");
}

/// MTI pruning is force-disabled for non-Euclidean / non-mean algorithms
/// via the eligibility hook: requesting it is harmless and the run reports
/// no pruning activity.
#[test]
fn pruning_request_is_ignored_for_ineligible_algorithms() {
    let data = mixture(800, 6, 71);
    for algo in
        [Algorithm::Spherical, Algorithm::Fuzzy { m: 2.0 }, Algorithm::MiniBatch { batch: 200 }]
    {
        let r = Kmeans::new(
            KmeansConfig::new(6)
                .with_algo(algo.clone())
                .with_pruning(Pruning::Mti) // explicitly requested…
                .with_seed(1)
                .with_threads(2)
                .with_sse(false)
                .with_max_iters(10),
        )
        .fit(&data);
        let p = r.total_prune();
        assert_eq!(p.clause1_rows, 0, "{}: clause 1 fired without eligibility", algo.name());
        assert_eq!(p.clause2_prunes + p.clause3_prunes, 0, "{}: clauses pruned", algo.name());
    }
}
