//! Serving-layer integration tests: the batched predict path must be
//! **bitwise identical** to the serial per-row `nearest` scan for every
//! kernel knob and every algorithm's normalization, and one registry
//! model must survive being hammered from many client threads.

use std::sync::Arc;

use knor::prelude::*;
use knor::serve::{predict_serial, ManualClock};
use knor_core::{KernelKind, Normalization};
use proptest::prelude::*;

fn test_handle(threads: usize) -> ServeHandle {
    ServeHandle::start(
        ServeConfig::default().with_threads(threads).with_clock(Arc::new(ManualClock::new())),
    )
}

fn arb_case() -> impl Strategy<Value = ((usize, usize), Vec<f64>, Vec<f64>)> {
    // (k, d, m) with centroid and query payloads; m spans several chunks
    // sometimes, and d % 4 != 0 exercises kernel remainders.
    (1usize..12, 1usize..9, 1usize..300).prop_flat_map(|(k, d, m)| {
        (
            Just((k, d)),
            proptest::collection::vec(-50.0f64..50.0, k * d),
            proptest::collection::vec(-50.0f64..50.0, m * d),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched predict through knor-serve == per-row `nearest`, bit for
    /// bit, for every `KernelKind` and every `Algorithm` normalization
    /// (spherical queries renormalize exactly like training rows did).
    #[test]
    fn batched_predict_is_bitwise_serial(((k, d), cents, queries) in arb_case()) {
        let h = test_handle(3);
        for algo in [
            Algorithm::Lloyd,
            Algorithm::Spherical,
            Algorithm::Fuzzy { m: 2.0 },
            Algorithm::MiniBatch { batch: 8 },
        ] {
            let name = algo.name();
            h.register_model(name, algo.clone(), DMatrix::from_vec(cents.clone(), k, d));
            let entry = h.registry().get(name).expect("model missing");
            prop_assert_eq!(
                entry.model.normalization,
                if matches!(algo, Algorithm::Spherical) {
                    Normalization::UnitRow
                } else {
                    Normalization::None
                }
            );
            let reference = predict_serial(&entry.model, &queries, d);
            for kernel in [
                KernelKind::Auto,
                KernelKind::Scalar,
                KernelKind::Tiled,
                KernelKind::NormTrick,
            ] {
                let out = h
                    .predict_rows_with(name, &queries, d, kernel)
                    .expect("predict failed");
                prop_assert_eq!(&out.assignments, &reference.assignments);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(&out.distances), bits(&reference.distances));
            }
        }
    }
}

#[test]
fn eight_threads_hammering_one_model_agree_with_serial() {
    let h = test_handle(4);
    let data = MixtureSpec::friendster_like(4_000, 6, 17).generate().data;
    let id = h.submit_train(TrainSpec {
        threads: Some(2),
        ..TrainSpec::new("shared", 8, TrainSource::Matrix(data.clone()))
    });
    match h.wait_job(id) {
        Some(knor::serve::JobStatus::Done { version: 1 }) => {}
        other => panic!("train failed: {other:?}"),
    }
    let entry = h.registry().get("shared").expect("model missing");
    let reference = Arc::new(predict_serial(&entry.model, data.as_slice(), 6));

    let clients = 8;
    let rounds = 20;
    let batch = 250; // 4000 rows / 16 distinct offsets
    std::thread::scope(|s| {
        for t in 0..clients {
            let h = h.clone();
            let data = &data;
            let reference = Arc::clone(&reference);
            s.spawn(move || {
                for r in 0..rounds {
                    // Each client walks the data at its own offset.
                    let lo = ((t * 7 + r * 3) % 16) * batch;
                    let q = &data.as_slice()[lo * 6..(lo + batch) * 6];
                    let out = h.predict_rows("shared", q, 6).expect("predict failed");
                    assert_eq!(
                        out.assignments,
                        reference.assignments[lo..lo + batch],
                        "client {t} round {r}"
                    );
                    for (i, dist) in out.distances.iter().enumerate() {
                        assert_eq!(
                            dist.to_bits(),
                            reference.distances[lo + i].to_bits(),
                            "client {t} round {r} row {i}"
                        );
                    }
                }
            });
        }
    });

    // Every batch must be accounted for exactly once.
    let s = h.stats("shared").unwrap();
    assert_eq!(s.batches, (clients * rounds) as u64);
    assert_eq!(s.queries, (clients * rounds * batch) as u64);
    assert_eq!(h.caught_panics(), 0);
}

#[test]
fn trained_spherical_model_serves_renormalized_queries() {
    // End-to-end across layers: spherical training (dot-product kernel)
    // → registry (UnitRow metadata) → batched predict (exact kernel on
    // renormalized queries) — all bitwise against the serial reference.
    let h = test_handle(2);
    let data = MixtureSpec::friendster_like(1_000, 5, 23).generate().data;
    let id = h.submit_train(TrainSpec {
        algo: Algorithm::Spherical,
        threads: Some(2),
        ..TrainSpec::new("sph", 6, TrainSource::Matrix(data.clone()))
    });
    assert!(matches!(h.wait_job(id), Some(knor::serve::JobStatus::Done { .. })));
    let entry = h.registry().get("sph").expect("model missing");
    assert_eq!(entry.model.normalization, Normalization::UnitRow);
    let out = h.predict("sph", &data).unwrap();
    let reference = predict_serial(&entry.model, data.as_slice(), 5);
    assert_eq!(out.assignments, reference.assignments);
    // Trained spherical centroids are unit-norm, so every served distance
    // lies in [0, 2] for unit queries.
    assert!(out.distances.iter().all(|&x| (0.0..=2.0 + 1e-9).contains(&x)));
}
