//! The tracing layer's contract, across engines:
//!
//! 1. **Measurement only.** Attaching a recorder must not perturb the
//!    computation: a traced run reproduces the untraced run *bitwise* —
//!    assignments, centroids, trajectory — on knori, knors and knord.
//! 2. **Well-formed export.** The chrome-trace JSON parses (with the
//!    bench harness's own parser, no serde in this workspace), carries
//!    one named track per worker, and names every barrier super-phase.
//! 3. **Accounted breakdown.** The folded [`PhaseBreakdown`] sees every
//!    span the export sees and a nonzero compute + barrier-wait total.

use knor::numa::Topology;
use knor::prelude::*;
use knor_bench::regression::Json;
use std::collections::BTreeSet;
use std::sync::Arc;

fn workload(n: usize, d: usize, seed: u64) -> DMatrix {
    MixtureSpec::friendster_like(n, d, seed).generate().data
}

/// Run-or-trace harness: `f(None)` is the reference, `f(Some(buf))` the
/// traced run; the two must be indistinguishable in every result field
/// that feeds the algorithm.
fn assert_bitwise<R>(
    tag: &str,
    f: impl Fn(Option<Arc<TraceBuf>>) -> R,
    fields: impl Fn(&R) -> (&Vec<u32>, &DMatrix, usize, Option<f64>),
) -> Arc<TraceBuf> {
    let off = f(None);
    let buf = Arc::new(TraceBuf::new());
    let on = f(Some(buf.clone()));
    let (a_off, c_off, n_off, s_off) = fields(&off);
    let (a_on, c_on, n_on, s_on) = fields(&on);
    assert_eq!(a_on, a_off, "{tag}: traced assignments diverged");
    assert_eq!(c_on, c_off, "{tag}: traced centroids must match bitwise");
    assert_eq!(n_on, n_off, "{tag}: traced trajectory diverged");
    assert_eq!(
        s_on.map(f64::to_bits),
        s_off.map(f64::to_bits),
        "{tag}: traced SSE must match bitwise"
    );
    assert!(!buf.spans().is_empty(), "{tag}: traced run recorded nothing");
    buf
}

#[test]
fn tracing_is_bitwise_neutral_for_knori_knors_knord() {
    let data = workload(1400, 6, 512);
    let k = 9;
    let init = InitMethod::Forgy.initialize(&data, k, 7).to_matrix();
    let max_iters = 25;

    // knori on a synthetic 2-node topology with replication forced on, so
    // the publish phase records too.
    let im = assert_bitwise(
        "knori",
        |trace| {
            let mut cfg = KmeansConfig::new(k)
                .with_init(InitMethod::Given(init.clone()))
                .with_threads(4)
                .with_topology(Topology::synthetic(2, 2))
                .with_scheduler(SchedulerKind::Static)
                .with_replication(Replication::On)
                .with_max_iters(max_iters)
                .with_sse(true);
            if let Some(b) = trace {
                cfg = cfg.with_trace(b);
            }
            Kmeans::new(cfg).fit(&data)
        },
        |r| (&r.assignments, &r.centroids, r.niters, r.sse),
    );
    let bd = im.breakdown();
    assert!(!bd.is_empty());
    assert_eq!(bd.tracks.len(), 4, "one track per knori worker");

    // knors from a file.
    let mut path = std::env::temp_dir();
    path.push(format!("knor-trace-bitwise-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &data).unwrap();
    assert_bitwise(
        "knors",
        |trace| {
            let mut cfg = SemConfig::new(k)
                .with_init(SemInit::Given(init.clone()))
                .with_threads(2)
                .with_scheduler(SchedulerKind::Static)
                .with_page_size(512)
                .with_task_size(128)
                .with_row_cache_bytes(1 << 20)
                .with_max_iters(max_iters)
                .with_sse(true);
            if let Some(b) = trace {
                cfg = cfg.with_trace(b);
            }
            SemKmeans::new(cfg).fit(&path).unwrap()
        },
        |r| (&r.kmeans.assignments, &r.kmeans.centroids, r.kmeans.niters, r.kmeans.sse),
    );
    std::fs::remove_file(&path).unwrap();

    // knord: 2 ranks × 2 threads over the wire model.
    let dist = assert_bitwise(
        "knord",
        |trace| {
            let mut cfg = DistConfig::new(k, 2, 2)
                .with_init(InitMethod::Given(init.clone()))
                .with_scheduler(SchedulerKind::Static)
                .with_task_size(128)
                .with_max_iters(max_iters)
                .with_sse(true);
            if let Some(b) = trace {
                cfg = cfg.with_trace(b);
            }
            DistKmeans::new(cfg).fit(&data)
        },
        |r| (&r.assignments, &r.centroids, r.niters, r.sse),
    );
    // 2 ranks × (2 workers + 1 comm track) register under distinct ids.
    assert_eq!(dist.breakdown().tracks.len(), 6, "knord tracks: workers plus comm");
}

/// The result structs surface the breakdown only when a recorder was
/// attached — `--stats` without `--trace` must not silently cost a ring.
#[test]
fn phases_field_is_none_without_a_recorder() {
    let data = workload(600, 4, 99);
    let r = Kmeans::new(KmeansConfig::new(5).with_seed(1).with_max_iters(10)).fit(&data);
    assert!(r.phases.is_none());
    let d = DistKmeans::new(DistConfig::new(5, 2, 1).with_seed(1).with_max_iters(10)).fit(&data);
    assert!(d.phases.is_none());
}

#[test]
fn chrome_trace_export_is_valid_json_with_per_worker_tracks() {
    let data = workload(1200, 6, 613);
    let buf = Arc::new(TraceBuf::new());
    let r = Kmeans::new(
        KmeansConfig::new(9)
            .with_seed(3)
            .with_threads(3)
            .with_max_iters(12)
            .with_trace(buf.clone()),
    )
    .fit(&data);
    assert!(r.phases.as_ref().is_some_and(|p| !p.is_empty()));

    let text = buf.chrome_trace_json();
    let doc = Json::parse(&text).expect("chrome trace must be valid JSON");
    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(!events.is_empty());

    let mut span_tracks = BTreeSet::new();
    let mut named_tracks = BTreeSet::new();
    let mut phases = BTreeSet::new();
    let mut spans = 0u64;
    for e in events {
        let track = (
            e.get("pid").and_then(Json::as_f64).expect("pid") as u64,
            e.get("tid").and_then(Json::as_f64).expect("tid") as u64,
        );
        match e.get("ph").and_then(Json::as_str) {
            Some("M") => {
                named_tracks.insert(track);
            }
            Some("X") => {
                spans += 1;
                span_tracks.insert(track);
                phases.insert(e.get("name").and_then(Json::as_str).expect("name").to_string());
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(e.get("dur").and_then(Json::as_f64).is_some_and(|d| d >= 0.0));
                assert!(e.get("args").and_then(|a| a.get("iter")).is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(named_tracks.len(), 3, "one thread_name metadata record per worker");
    assert!(span_tracks.iter().all(|t| named_tracks.contains(t)), "spans on unnamed tracks");
    assert_eq!(spans, buf.spans().len() as u64, "export and breakdown must see the same spans");
    for required in ["compute", "barrier_a", "barrier_b", "barrier_c", "merge", "update"] {
        assert!(phases.contains(required), "missing phase {required}: {phases:?}");
    }
}

/// knord's export adds one comm track per rank whose allreduce spans
/// carry the wire byte count.
#[test]
fn knord_trace_names_allreduce_with_wire_bytes() {
    let data = workload(900, 5, 717);
    let buf = Arc::new(TraceBuf::new());
    DistKmeans::new(
        DistConfig::new(8, 2, 2).with_seed(11).with_max_iters(8).with_trace(buf.clone()),
    )
    .fit(&data);
    let doc = Json::parse(&buf.chrome_trace_json()).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let allreduce: Vec<_> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("allreduce"))
        .collect();
    assert!(!allreduce.is_empty(), "no allreduce spans in a 2-rank run");
    assert!(
        allreduce.iter().any(|e| {
            e.get("args").and_then(|a| a.get("bytes")).and_then(Json::as_f64).unwrap_or(0.0) > 0.0
        }),
        "allreduce spans never carried wire bytes"
    );
}
