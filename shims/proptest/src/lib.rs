//! Offline shim for `proptest`: the macro + strategy surface this
//! workspace's property tests use, with deterministic generation and **no
//! shrinking**. A failing case panics with the case's seed so it can be
//! replayed by reading the loop in `__proptest_body!`.
//!
//! Implemented: `proptest! { #![proptest_config(..)] #[test] fn f(x in s) { .. } }`,
//! `Strategy` with `prop_map`/`prop_flat_map`, strategies for numeric
//! ranges and 2-/3-tuples, `collection::vec`, `Just`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`
//! macros.

use std::ops::{Range, RangeInclusive};

/// Run-configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Deterministic per-case random source (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a case's generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Widening multiply; the bias is irrelevant at test scales.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy just produces values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `f` (rejection sampling, bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates in a row", self.whence)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng),)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end);
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with `size` elements.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop_assume!(cond)`: skip the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// The `proptest!` block: wraps `#[test] fn f(pat in strategy, ..) { .. }`
/// items into case-looping tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategies = ( $( $strat, )+ );
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::TestRng::new(
                        0x6b6e_6f72_0000_0000u64 ^ (__case << 16) ^ __case,
                    );
                    let ( $( $arg, )+ ) =
                        $crate::Strategy::generate(&__strategies, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __case, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_links_values(v in (1usize..5).prop_flat_map(|n| {
            collection::vec(0.0f64..1.0, n * 2).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n * 2);
        }

        #[test]
        fn assume_skips(a in 0u64..10) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0u64..1000, 0.0f64..1.0);
        let a = Strategy::generate(&s, &mut TestRng::new(9));
        let b = Strategy::generate(&s, &mut TestRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic() {
        // Expand by hand what a failing body does.
        fn run() -> Result<(), TestCaseError> {
            prop_assert!(1 == 2);
            Ok(())
        }
        if let Err(TestCaseError::Fail(msg)) = run() {
            panic!("proptest case 0 failed: {msg}");
        }
    }
}
