//! Offline shim for `crossbeam-channel`: an unbounded MPMC channel with
//! cloneable senders *and* receivers and crossbeam's disconnect semantics,
//! built on `Mutex<VecDeque>` + `Condvar`. Performance is adequate for the
//! coarse-grained messages this workspace moves (serialized centroid
//! buffers, one per rank per collective step).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (any one receiver gets each message).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueue a message; fails only if all receivers were dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(value);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake blocked receivers so they can observe EOF.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives; fails once the channel is empty and
    /// all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.shared.ready.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(99u32).unwrap();
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn mpmc_sum_is_exact() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, (0..4000u64).sum());
    }
}
