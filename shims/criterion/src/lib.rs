//! Offline shim for `criterion`: the macro and builder surface the
//! workspace's benches use, backed by a straightforward timing loop (warm
//! up, then run for the configured measurement time; report mean and min).
//! No statistical analysis, plots, or baselines — enough to compile and to
//! give usable relative numbers with `cargo bench`.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { name: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// Passed to the benchmark closure; runs the timing loop.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled by `iter`: (iterations, total elapsed).
    result: Option<(u64, Duration)>,
}

impl Bencher<'_> {
    /// Time `f` repeatedly: warm up, then measure until the configured
    /// measurement time elapses (at least `sample_size` runs).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let deadline = start + self.config.measurement_time;
        while iters < self.config.sample_size as u64 || Instant::now() < deadline {
            black_box(f());
            iters += 1;
            if iters >= 10 * self.config.sample_size as u64 && Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Minimum measured runs per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Target measurement duration per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.config.measurement_time = t;
        self
    }

    /// Warm-up duration per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.config.warm_up_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = id.into().to_string();
        run_one(&self.config, &name, f);
        self
    }
}

/// A named group of benchmarks sharing the driver's timing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.criterion.config, &full, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.criterion.config, &full, |b| f(b, input));
        self
    }

    /// Close the group (kept for API parity; prints nothing extra).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(config: &Config, name: &str, mut f: F) {
    let mut b = Bencher { config, result: None };
    f(&mut b);
    match b.result {
        Some((iters, total)) if iters > 0 => {
            let mean = total.as_nanos() as f64 / iters as f64;
            println!("{name:<48} {:>12}/iter ({iters} iters)", fmt_ns(mean));
        }
        _ => println!("{name:<48} (no measurement: closure never called iter)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declare a benchmark group: `criterion_group!(name = n; config = c; targets = f, g)`
/// or `criterion_group!(benches, f, g)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_function(BenchmarkId::new("sum", 100), |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        targets = spin
    );

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn bencher_records_iterations() {
        let config = Config {
            sample_size: 3,
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
        };
        let mut b = Bencher { config: &config, result: None };
        b.iter(|| 1 + 1);
        let (iters, _) = b.result.unwrap();
        assert!(iters >= 3);
    }
}
