//! Offline shim for `rand` 0.8: the trait surface this workspace uses.
//!
//! Provides [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait
//! with `gen`, `gen_range` and `gen_bool`. Generators implementing
//! [`RngCore`] (e.g. the `rand_chacha` shim's `ChaCha8Rng`) get the
//! extension methods for free via the blanket impl, exactly like the real
//! crate. Distribution details (open/closed intervals, rejection sampling)
//! follow rand 0.8 semantics closely enough for statistical workloads, but
//! streams are not bit-compatible with upstream.

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via splitmix64 key expansion (matching the
    /// real crate's approach of stretching 8 bytes over the full seed).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut s = state;
        for chunk in bytes.chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let w = z.to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their "standard" distribution
/// (`rng.gen::<T>()`): `[0, 1)` for floats, full range for integers.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A range samplable by `gen_range`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = sample_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` via widening-multiply with rejection on
/// the biased tail (Lemire's method over 64 bits; `span` fits in u64 here).
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let m = v as u128 * span as u128;
            ((m >> 64) as u64, m as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        // Closed-interval scaling as in rand 0.8's UniformFloat.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draw a value from `T`'s standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Submodule mirror of `rand::rngs` (unused placeholder kept for parity).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // splitmix64 so bits are well spread.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut r = Counter(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut r = Counter(2);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = Counter(3);
        for _ in 0..10_000 {
            let v = r.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
            let w = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = Counter(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
