//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning `lock()`/`read()`/`write()` API, implemented over
//! `std::sync`. A poisoned std lock (a panic while held) is treated as
//! still-usable, matching parking_lot's semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard, PoisonError, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_contended() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
