//! Offline shim for the `libc` crate: only the surface knor actually uses
//! is provided — the CPU-affinity calls for `knor-numa` and the readiness
//! `poll(2)` surface for the multiplexed serve front end (`knor-mpi`). The
//! functions are direct bindings to the system C library, so behaviour
//! matches the real crate on Linux/glibc targets.

#![allow(non_camel_case_types, non_snake_case)]

use std::os::raw::{c_int, c_short, c_ulong};

/// Size in bits of the static CPU set, matching glibc's `CPU_SETSIZE`.
pub const CPU_SETSIZE: c_int = 1024;

const ULONG_BITS: usize = usize::BITS as usize;

/// Mirror of glibc's `cpu_set_t`: a 1024-bit mask stored as unsigned longs.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [usize; CPU_SETSIZE as usize / ULONG_BITS],
}

/// Clear every CPU in `set` (glibc macro `CPU_ZERO`).
///
/// # Safety
/// Matches the signature of the real crate; safe in practice, marked unsafe
/// for drop-in compatibility.
pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    for word in set.bits.iter_mut() {
        *word = 0;
    }
}

/// Add `cpu` to `set` (glibc macro `CPU_SET`).
///
/// # Safety
/// See [`CPU_ZERO`].
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / ULONG_BITS] |= 1usize << (cpu % ULONG_BITS);
    }
}

/// Test whether `cpu` is in `set` (glibc macro `CPU_ISSET`).
///
/// # Safety
/// See [`CPU_ZERO`].
pub unsafe fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && set.bits[cpu / ULONG_BITS] & (1usize << (cpu % ULONG_BITS)) != 0
}

/// `nfds_t`: the fd-count type of `poll(2)` (an unsigned long on glibc).
pub type nfds_t = c_ulong;

/// Mirror of the C `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct pollfd {
    /// File descriptor (negative entries are ignored by the kernel).
    pub fd: c_int,
    /// Requested events (`POLLIN` / `POLLOUT` bits).
    pub events: c_short,
    /// Returned events (filled in by the kernel).
    pub revents: c_short,
}

/// Data may be read without blocking.
pub const POLLIN: c_short = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: c_short = 0x004;
/// Error condition (returned only).
pub const POLLERR: c_short = 0x008;
/// Peer hung up (returned only).
pub const POLLHUP: c_short = 0x010;
/// Invalid descriptor (returned only).
pub const POLLNVAL: c_short = 0x020;

extern "C" {
    /// Bind the calling thread (`pid == 0`) to the CPUs in `mask`.
    pub fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const cpu_set_t) -> c_int;
    /// Fetch the calling thread's affinity mask into `mask`.
    pub fn sched_getaffinity(pid: c_int, cpusetsize: usize, mask: *mut cpu_set_t) -> c_int;
    /// Wait for readiness on `nfds` descriptors, up to `timeout` ms
    /// (`-1` = forever). Returns ready count, 0 on timeout, -1 on error.
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test_round_trip() {
        unsafe {
            let mut set: cpu_set_t = std::mem::zeroed();
            CPU_ZERO(&mut set);
            assert!(!CPU_ISSET(0, &set));
            CPU_SET(0, &mut set);
            CPU_SET(63, &mut set);
            CPU_SET(64, &mut set);
            assert!(CPU_ISSET(0, &set));
            assert!(CPU_ISSET(63, &set));
            assert!(CPU_ISSET(64, &set));
            assert!(!CPU_ISSET(1, &set));
        }
    }

    #[test]
    fn getaffinity_reports_at_least_one_cpu() {
        unsafe {
            let mut set: cpu_set_t = std::mem::zeroed();
            let rc = sched_getaffinity(0, std::mem::size_of::<cpu_set_t>(), &mut set);
            assert_eq!(rc, 0);
            assert!((0..CPU_SETSIZE as usize).any(|c| CPU_ISSET(c, &set)));
        }
    }
}
