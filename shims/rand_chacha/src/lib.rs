//! Offline shim for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the `rand` shim's `RngCore`/`SeedableRng`.
//!
//! The keystream is genuine ChaCha with 8 rounds — 4 double-rounds
//! (RFC 7539 core, 64-bit counter) — so quality matches the upstream crate;
//! output is deterministic per seed but not bit-compatible with upstream's
//! word-ordering.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 = exhausted.
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column then diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(&input) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn keystream_is_not_degenerate() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let words: Vec<u32> = (0..64).map(|_| r.next_u32()).collect();
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        assert!(distinct.len() > 60, "keystream repeats too much");
        // Bit balance: about half the bits set.
        let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
        let total = 64 * 32;
        assert!((ones as f64 / total as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn uniform_mean_via_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
