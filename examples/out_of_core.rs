//! knors end-to-end: write a dataset to disk, cluster it under an O(n)
//! memory budget, and report the I/O the caches saved.
//!
//! ```sh
//! cargo run --release --example out_of_core [n]
//! ```

use knor::prelude::*;

fn main() -> std::io::Result<()> {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let d = 32;
    let k = 16;

    // Generate and persist a Friendster-32-like matrix.
    let planted = MixtureSpec::friendster_like(n, d, 99).generate();
    let mut path = std::env::temp_dir();
    path.push(format!("knor-out-of-core-{}.knor", std::process::id()));
    matrix_io::write_matrix(&path, &planted.data)?;
    let file_mb = (n * d * 8) as f64 / 1e6;
    println!("wrote {file_mb:.1} MB to {}", path.display());

    // Cluster it semi-externally: row data never fully resident.
    let init = InitMethod::PlusPlus.initialize(&planted.data, k, 5).to_matrix();
    let config = SemConfig::new(k)
        .with_init(SemInit::Given(init))
        .with_row_cache_bytes(8 << 20) // 8 MB row cache
        .with_page_cache_bytes(16 << 20) // 16 MB page cache
        .with_max_iters(60)
        .with_prefetch(true)
        .with_sse(true);
    let t0 = std::time::Instant::now();
    let result = SemKmeans::new(config).fit(&path)?;
    let elapsed = t0.elapsed();

    println!("\nknors run: {} iterations in {elapsed:.2?}", result.kmeans.niters);
    println!("  converged = {}", result.kmeans.converged);
    println!("  SSE = {:.3}", result.kmeans.sse.unwrap());
    println!(
        "  resident engine state: {:.2} MB (vs {file_mb:.1} MB of data)",
        (result.kmeans.memory.total() - result.kmeans.memory.cache_bytes) as f64 / 1e6,
    );

    let req: u64 = result.io.iter().map(|i| i.bytes_requested).sum();
    let read: u64 = result.io.iter().map(|i| i.bytes_read).sum();
    let naive = (n * d * 8) as u64 * result.kmeans.niters as u64;
    println!("\nI/O accounting across the run:");
    println!("  full rescan would request : {:>10.1} MB", naive as f64 / 1e6);
    println!("  knors requested           : {:>10.1} MB (Clause 1 + row cache)", req as f64 / 1e6);
    println!("  device actually read      : {:>10.1} MB (page-granular)", read as f64 / 1e6);
    let hits: u64 = result.io.iter().map(|i| i.rc_hits).sum();
    println!("  row-cache hits            : {hits}");

    println!("\n  iter  active-rows  rc-hits  MB-read");
    for io in result.io.iter().take(10) {
        println!(
            "  {:>4}  {:>11}  {:>7}  {:>7.2}",
            io.iter,
            io.active_rows,
            io.rc_hits,
            io.bytes_read as f64 / 1e6
        );
    }
    if result.io.len() > 10 {
        println!("  ... ({} more iterations)", result.io.len() - 10);
    }

    std::fs::remove_file(&path)?;
    Ok(())
}
