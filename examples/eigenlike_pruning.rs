//! MTI pruning on natural-cluster data: knori vs knori- vs full Elkan TI.
//!
//! Reproduces the §8.6 story on a laptop-scale Friendster-like workload:
//! MTI prunes nearly as much as full TI while holding O(n) instead of
//! O(nk) bound state.
//!
//! ```sh
//! cargo run --release --example eigenlike_pruning [n] [k]
//! ```

use knor::prelude::*;
use knor_baselines::elkan::elkan_full_ti;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    let data = MixtureSpec::friendster_like(n, 8, 11).generate().data;
    let init = InitMethod::PlusPlus.initialize(&data, k, 3).to_matrix();

    println!("workload: n={n}, d=8, k={k} (power-law natural clusters)\n");

    // knori (MTI on).
    let t0 = std::time::Instant::now();
    let knori = Kmeans::new(
        KmeansConfig::new(k).with_init(InitMethod::Given(init.clone())).with_max_iters(100),
    )
    .fit(&data);
    let t_knori = t0.elapsed();

    // knori- (MTI off).
    let t0 = std::time::Instant::now();
    let knori_minus = Kmeans::new(
        KmeansConfig::new(k)
            .with_init(InitMethod::Given(init.clone()))
            .with_pruning(Pruning::None)
            .with_max_iters(100),
    )
    .fit(&data);
    let t_minus = t0.elapsed();

    // Full Elkan TI (serial reference with O(nk) bounds).
    let t0 = std::time::Instant::now();
    let elkan = elkan_full_ti(&data, &init, 100);
    let t_elkan = t0.elapsed();

    let exhaustive = (n * k) as u64 * knori.niters as u64;
    let mti_comps = knori.total_prune().dist_computations;
    let ti_comps = elkan.prune.dist_computations;

    println!("variant   iters  time       dist-comps     vs exhaustive  bound state");
    println!(
        "knori     {:>5}  {:>8.2?}  {:>13}  {:>12.1}%  O(n)   = {:.1} MB",
        knori.niters,
        t_knori,
        mti_comps,
        100.0 * mti_comps as f64 / exhaustive as f64,
        (n * 8) as f64 / 1e6
    );
    println!(
        "knori-    {:>5}  {:>8.2?}  {:>13}  {:>12.1}%  none",
        knori_minus.niters,
        t_minus,
        knori_minus.total_prune().dist_computations,
        100.0
    );
    println!(
        "ElkanTI   {:>5}  {:>8.2?}  {:>13}  {:>12.1}%  O(nk)  = {:.1} MB",
        elkan.niters,
        t_elkan,
        ti_comps,
        100.0 * ti_comps as f64 / (n * k) as f64 / elkan.niters as f64,
        elkan.bound_bytes as f64 / 1e6
    );

    // The three must agree on the clustering (pruning is exact).
    let sse_knori = knori.sse.unwrap();
    let sse_minus = knori_minus.sse.unwrap();
    let sse_elkan = knor::core::quality::sse(&data, &elkan.centroids, &elkan.assignments);
    println!("\nSSE agreement: knori={sse_knori:.4}  knori-={sse_minus:.4}  elkan={sse_elkan:.4}");
}
