//! Quickstart: cluster a planted mixture with knori and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use knor::prelude::*;

fn main() {
    // A Friendster-eigenvector-like workload: 50K points, 8 dims, 16
    // power-law-sized natural clusters (Table 2 at 1/1320 scale).
    let planted = MixtureSpec::friendster_like(50_000, 8, 42).generate();
    let k = 16;

    let config =
        KmeansConfig::new(k).with_init(InitMethod::PlusPlus).with_seed(7).with_max_iters(100);
    let t0 = std::time::Instant::now();
    let result = Kmeans::new(config).fit(&planted.data);
    let elapsed = t0.elapsed();

    println!("knori quickstart");
    println!("  n = {}, d = {}, k = {k}", planted.data.nrow(), planted.data.ncol());
    println!(
        "  converged = {} after {} iterations in {elapsed:.2?}",
        result.converged, result.niters
    );
    println!("  SSE = {:.3}", result.sse.unwrap());
    println!(
        "  pruned {:.1}% of distance computations (MTI)",
        100.0 * result.prune_fraction(planted.data.nrow() as u64, k as u64)
    );
    println!(
        "  memory: {:.1} MB data + {:.2} MB engine state",
        result.memory.data_bytes as f64 / 1e6,
        (result.memory.total() - result.memory.data_bytes) as f64 / 1e6
    );

    // How well did we recover the planted centers?
    let err = knor::core::quality::max_center_error(&result.centroids, &planted.centers);
    println!("  max recovered-center error vs planted centers = {err:.3}");

    // Per-iteration trace.
    println!("\n  iter  reassigned  rows-touched  clause-1 skips");
    for it in result.iters.iter().take(8) {
        println!(
            "  {:>4}  {:>10}  {:>12}  {:>14}",
            it.iter, it.reassigned, it.rows_accessed, it.prune.clause1_rows
        );
    }
    if result.niters > 8 {
        println!("  ... ({} more iterations)", result.niters - 8);
    }
}
