//! knord on a simulated cluster: decentralized ring reduce vs the
//! driver-centric star, with exact wire-traffic accounting.
//!
//! ```sh
//! cargo run --release --example cluster_sim [ranks]
//! ```

use knor::prelude::*;

fn main() {
    let ranks: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let n = 120_000;
    let d = 16;
    let k = 32;

    let data = MixtureSpec::friendster_like(n, d, 3).generate().data;
    let init = InitMethod::PlusPlus.initialize(&data, k, 1).to_matrix();

    println!("knord on {ranks} in-process ranks (n={n}, d={d}, k={k})\n");
    println!("reduce  iters  time      max-rank-comm/iter  modeled-wire/iter");
    for (name, algo) in [("ring", ReduceAlgo::Ring), ("star", ReduceAlgo::Star)] {
        let t0 = std::time::Instant::now();
        let result = DistKmeans::new(
            DistConfig::new(k, ranks, 1)
                .with_init(InitMethod::Given(init.clone()))
                .with_reduce(algo)
                .with_max_iters(60),
        )
        .fit(&data);
        let elapsed = t0.elapsed();
        let comm: u64 = result.iters.iter().map(|i| i.max_rank_comm_bytes).max().unwrap();
        let wire: f64 =
            result.iters.iter().map(|i| i.modeled_comm_ns).sum::<f64>() / result.niters as f64;
        println!(
            "{name:<6}  {:>5}  {elapsed:>8.2?}  {:>15.1} KB  {:>14.2} ms",
            result.niters,
            comm as f64 / 1e3,
            wire / 1e6,
        );
    }

    // The MPI baseline shape: one single-threaded rank per "core".
    let t0 = std::time::Instant::now();
    let mpi = DistKmeans::new(
        DistConfig::pure_mpi(k, ranks * 2)
            .with_init(InitMethod::Given(init.clone()))
            .with_max_iters(60),
    )
    .fit(&data);
    println!(
        "\npure-MPI baseline ({} ranks x 1 thread): {} iters in {:.2?}",
        ranks * 2,
        mpi.niters,
        t0.elapsed()
    );

    // All variants agree with a serial run.
    let serial = knor::core::serial::lloyd_serial(&data, k, &InitMethod::Given(init), 0, 60, 0.0);
    println!(
        "serial agreement check: {} iterations (matches = {})",
        serial.niters,
        serial.niters == mpi.niters
    );
}
